//! Measures decoder throughput on the N = 64800 rate-1/2 code at 30 fixed
//! iterations and emits `BENCH_decoder.json` at the repository root.
//!
//! The baseline entry re-implements the original (pre-SoA) flooding decoder
//! verbatim — per-variable edge-list gathers plus scratch-copy check
//! updates — so the recorded speedup compares the fast-path engine against
//! what the repository actually shipped before, not against a strawman.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin bench_decoder [--quick]`
//! (`--quick` shortens the per-variant measurement window.)

use dvbs2::decoder::{
    detected_cpu_features, hard_decisions, syndrome_ok, CheckRule, DecodeResult, Decoder,
    DecoderConfig, FloodingDecoder, Precision, QCheckArithmetic, QuantizedZigzagDecoder, Quantizer,
    SimdTier, TileSchedule, TiledBatchDecoder, ZigzagDecoder,
};
use dvbs2::hardware::{hw_chain_partition, CnSchedule, ConnectivityRom};
use dvbs2::ldpc::{CodeRate, FrameSize, TannerGraph};
use dvbs2::{Dvbs2System, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// The sum-product throughput recorded by PR-4's `BENCH_decoder.json`
/// (`flooding_sum_product_f32`, coded Mbit/s) — the fixed yardstick the
/// table-driven boxplus lane is scored against.
const PR4_SUM_PRODUCT_F32_MBPS: f64 = 0.140;

/// The seed repository's min-sum check kernel, verbatim: branchy
/// two-minima tracking and multiplicative sign application. Embedded so the
/// baseline times the code the repository actually shipped rather than
/// today's branchless shared kernel.
fn seed_min_sum_extrinsic(incoming: &[f64], out: &mut [f64], correct: impl Fn(f64) -> f64) {
    let mut min1 = f64::INFINITY;
    let mut min2 = f64::INFINITY;
    let mut min_idx = 0usize;
    let mut sign_product = 1.0f64;
    for (i, &x) in incoming.iter().enumerate() {
        let mag = x.abs();
        if mag < min1 {
            min2 = min1;
            min1 = mag;
            min_idx = i;
        } else if mag < min2 {
            min2 = mag;
        }
        if x < 0.0 {
            sign_product = -sign_product;
        }
    }
    for (i, o) in out.iter_mut().enumerate() {
        let mag = correct(if i == min_idx { min2 } else { min1 });
        let self_sign = if incoming[i] < 0.0 { -1.0 } else { 1.0 };
        *o = sign_product * self_sign * mag;
    }
}

/// The seed repository's flooding decoder, embedded as the benchmark
/// baseline (identical numerics to the pre-refactor implementation).
struct SeedFlooding {
    graph: Arc<TannerGraph>,
    config: DecoderConfig,
    v2c: Vec<f64>,
    c2v: Vec<f64>,
    totals: Vec<f64>,
    scratch_in: Vec<f64>,
    scratch_out: Vec<f64>,
}

impl SeedFlooding {
    fn new(graph: Arc<TannerGraph>, config: DecoderConfig) -> Self {
        let edges = graph.edge_count();
        let vars = graph.var_count();
        let max_degree = (0..graph.check_count()).map(|c| graph.check_degree(c)).max().unwrap_or(0);
        SeedFlooding {
            graph,
            config,
            v2c: vec![0.0; edges],
            c2v: vec![0.0; edges],
            totals: vec![0.0; vars],
            scratch_in: vec![0.0; max_degree],
            scratch_out: vec![0.0; max_degree],
        }
    }
}

impl Decoder for SeedFlooding {
    // Verbatim seed code: lint style kept as shipped so the baseline's
    // codegen matches the original.
    #[allow(clippy::needless_range_loop)]
    fn decode(&mut self, channel_llrs: &[f64]) -> DecodeResult {
        let graph = Arc::clone(&self.graph);
        self.c2v.fill(0.0);
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..self.config.max_iterations {
            iterations += 1;
            for v in 0..graph.var_count() {
                let edges = graph.var_edges(v);
                let total: f64 =
                    channel_llrs[v] + edges.iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                self.totals[v] = total;
                for &e in edges {
                    self.v2c[e as usize] = total - self.c2v[e as usize];
                }
            }
            for c in 0..graph.check_count() {
                let range = graph.check_edges(c);
                let d = range.len();
                for (i, e) in range.clone().enumerate() {
                    self.scratch_in[i] = self.v2c[e];
                }
                match self.config.rule {
                    CheckRule::NormalizedMinSum(alpha) if d >= 3 => seed_min_sum_extrinsic(
                        &self.scratch_in[..d],
                        &mut self.scratch_out[..d],
                        |m| m * alpha,
                    ),
                    rule => rule.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]),
                }
                for (i, e) in range.enumerate() {
                    self.c2v[e] = self.scratch_out[i];
                }
            }
            if self.config.early_stop {
                for v in 0..graph.var_count() {
                    self.totals[v] = channel_llrs[v]
                        + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
                }
                if syndrome_ok(&graph, &hard_decisions(&self.totals)) {
                    converged = true;
                    break;
                }
            }
        }
        if !self.config.early_stop || !converged {
            for v in 0..graph.var_count() {
                self.totals[v] = channel_llrs[v]
                    + graph.var_edges(v).iter().map(|&e| self.c2v[e as usize]).sum::<f64>();
            }
            converged = syndrome_ok(&graph, &hard_decisions(&self.totals));
        }
        DecodeResult { bits: hard_decisions(&self.totals), iterations, converged }
    }

    fn name(&self) -> &'static str {
        "seed flooding"
    }
}

struct Measurement {
    name: &'static str,
    coded_mbps: f64,
    info_mbps: f64,
    frames: usize,
    seconds: f64,
}

/// Best-of-rounds throughput measurement, robust against the scheduling
/// noise of shared machines: each variant is timed in several short
/// windows, interleaved round-robin with every other variant so slow
/// drift (thermal or hypervisor throttling) hits all of them equally, and
/// the fastest window is reported — external interference only ever makes
/// a window slower, never faster.
fn measure_all(
    variants: &mut [(&'static str, Box<dyn Decoder>)],
    llrs: &[f64],
    n: usize,
    k: usize,
    rounds: usize,
    frames_per_window: usize,
) -> Vec<Measurement> {
    let mut best = vec![f64::INFINITY; variants.len()]; // seconds per frame
    let mut total_frames = vec![0usize; variants.len()];
    let mut total_seconds = vec![0f64; variants.len()];
    for (name, decoder) in variants.iter_mut() {
        let warm = decoder.decode(llrs);
        assert_eq!(warm.iterations, 30, "{name}: benchmark contract is 30 fixed iterations");
    }
    for _ in 0..rounds {
        for (i, (_, decoder)) in variants.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..frames_per_window {
                std::hint::black_box(decoder.decode(std::hint::black_box(llrs)));
            }
            let seconds = start.elapsed().as_secs_f64();
            best[i] = best[i].min(seconds / frames_per_window as f64);
            total_frames[i] += frames_per_window;
            total_seconds[i] += seconds;
        }
    }
    variants
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let m = Measurement {
                name,
                coded_mbps: n as f64 / best[i] / 1e6,
                info_mbps: k as f64 / best[i] / 1e6,
                frames: total_frames[i],
                seconds: total_seconds[i],
            };
            println!(
                "{:<28} {:>8.2} Mbit/s coded  {:>8.2} Mbit/s info  (best of {} frames, {:.2} s)",
                m.name, m.coded_mbps, m.info_mbps, m.frames, m.seconds
            );
            m
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rounds, frames_per_window) = if quick { (2, 1) } else { (5, 3) };

    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Normal,
        ..SystemConfig::default()
    })?;
    let graph = Arc::clone(system.graph());
    let params = *system.code().params();
    let (n, k) = (params.n, params.k);
    let mut rng = SmallRng::seed_from_u64(7);
    let frame = system.transmit_frame(&mut rng, 2.0);

    // The benchmark contract: 30 iterations, no early exit, min-sum as the
    // headline rule (the paper's hardware-relevant arithmetic).
    let base = DecoderConfig::default().with_max_iterations(30).with_early_stop(false);
    let min_sum = base.with_rule(CheckRule::NormalizedMinSum(0.8));

    println!(
        "N = {n}, K = {k}, rate 1/2, 30 fixed iterations, \
         {rounds} rounds x {frames_per_window} frames per variant\n"
    );

    let mut variants: Vec<(&'static str, Box<dyn Decoder>)> = vec![
        ("seed_flooding_min_sum", Box::new(SeedFlooding::new(Arc::clone(&graph), min_sum))),
        ("flooding_min_sum_f64", Box::new(FloodingDecoder::new(Arc::clone(&graph), min_sum))),
        (
            "flooding_min_sum_f32",
            Box::new(FloodingDecoder::new(
                Arc::clone(&graph),
                min_sum.with_precision(Precision::F32),
            )),
        ),
        (
            "zigzag_min_sum_f32",
            Box::new(ZigzagDecoder::new(
                Arc::clone(&graph),
                min_sum.with_precision(Precision::F32),
            )),
        ),
        ("flooding_sum_product_f64", Box::new(FloodingDecoder::new(Arc::clone(&graph), base))),
        (
            "flooding_sum_product_f32",
            Box::new(FloodingDecoder::new(Arc::clone(&graph), base.with_precision(Precision::F32))),
        ),
        (
            "zigzag_sum_product_f32",
            Box::new(ZigzagDecoder::new(Arc::clone(&graph), base.with_precision(Precision::F32))),
        ),
        (
            "flooding_table_sum_product_f32",
            Box::new(FloodingDecoder::new(
                Arc::clone(&graph),
                base.with_rule(CheckRule::TableSumProduct).with_precision(Precision::F32),
            )),
        ),
    ];

    // Hardware-partitioned quantized lanes: the natural schedule's chain
    // partition (the same construction the differential oracle verifies
    // bit-exact against the golden model), once through the reference
    // LUT-indirection sweep, once through the permutation-baked scalar
    // fused planes, and once through the sub-chain-major SIMD lane planes.
    // Same numerics throughout (all three are bit-exact), different memory
    // layout and kernels — the chain isolates each layer's speedup.
    let rom = ConnectivityRom::build(system.code().params(), system.code().table());
    let schedule = CnSchedule::natural(&rom);
    let partition = hw_chain_partition(&rom, &schedule, &graph);
    variants.push((
        "quantized_partitioned_indirect",
        Box::new(QuantizedZigzagDecoder::with_partition_indirect(
            Arc::clone(&graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            base,
            partition.clone(),
        )),
    ));
    variants.push((
        "quantized_partitioned_fused",
        Box::new(QuantizedZigzagDecoder::with_partition_fused(
            Arc::clone(&graph),
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            base,
            partition.clone(),
        )),
    ));
    let simd_lanes = QuantizedZigzagDecoder::with_partition(
        Arc::clone(&graph),
        QCheckArithmetic::lut(Quantizer::paper_6bit()),
        base,
        partition,
    );
    let quantized_simd_tier =
        simd_lanes.simd_tier().expect("the 360-lane hardware partition must be SIMD-plan eligible");
    variants.push(("quantized_partitioned_simd", Box::new(simd_lanes)));

    let rows = measure_all(&mut variants, &frame.llrs, n, k, rounds, frames_per_window);

    // Multi-frame tiled batched lanes: eight distinct noisy frames decoded
    // per call as cache-sized tiles, once per thread count. Same min-sum
    // f32 numerics as `flooding_min_sum_f32` (results are bit-identical per
    // frame), so the 1-thread ratio isolates the tiling win and the
    // thread-count rows record per-core scaling — honestly including the
    // case where the host has a single vCPU and the extra threads just
    // contend.
    const BATCH: usize = 8;
    const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
    const THREAD_NAMES: [&str; 3] = [
        "batched_tiled_min_sum_f32_x8_t1",
        "batched_tiled_min_sum_f32_x8_t2",
        "batched_tiled_min_sum_f32_x8_t4",
    ];
    let batch_frames: Vec<Vec<f64>> =
        (0..BATCH).map(|_| system.transmit_frame(&mut rng, 2.0).llrs).collect();
    let batch_llrs: Vec<&[f64]> = batch_frames.iter().map(|f| f.as_slice()).collect();
    let tiled_rows: Vec<Measurement> = THREAD_COUNTS
        .iter()
        .zip(THREAD_NAMES)
        .map(|(&threads, name)| {
            let mut batched = TiledBatchDecoder::new(
                Arc::clone(&graph),
                min_sum.with_precision(Precision::F32),
                TileSchedule::Flooding,
                BATCH,
            )
            .with_threads(threads);
            let warm = batched.decode_batch(&batch_llrs);
            for r in &warm {
                assert_eq!(
                    r.iterations, 30,
                    "tiled lane: benchmark contract is 30 fixed iterations"
                );
            }
            let mut best = f64::INFINITY;
            let mut total_frames = 0usize;
            let mut total_seconds = 0f64;
            for _ in 0..rounds {
                let start = Instant::now();
                for _ in 0..frames_per_window {
                    std::hint::black_box(batched.decode_batch(std::hint::black_box(&batch_llrs)));
                }
                let seconds = start.elapsed().as_secs_f64();
                best = best.min(seconds / (frames_per_window * BATCH) as f64);
                total_frames += frames_per_window * BATCH;
                total_seconds += seconds;
            }
            let m = Measurement {
                name,
                coded_mbps: n as f64 / best / 1e6,
                info_mbps: k as f64 / best / 1e6,
                frames: total_frames,
                seconds: total_seconds,
            };
            println!(
                "{:<28} {:>8.2} Mbit/s coded  {:>8.2} Mbit/s info  (best of {} frames, {:.2} s)",
                m.name, m.coded_mbps, m.info_mbps, m.frames, m.seconds
            );
            m
        })
        .collect();

    let mbps = |name: &str| {
        rows.iter()
            .chain(tiled_rows.iter())
            .find(|m| m.name == name)
            .map(|m| m.coded_mbps)
            .unwrap_or(0.0)
    };
    let baseline_mbps = rows[0].coded_mbps;
    let speedup = mbps("flooding_min_sum_f32") / baseline_mbps;
    let speedup_table_vs_pr4 = mbps("flooding_table_sum_product_f32") / PR4_SUM_PRODUCT_F32_MBPS;
    let speedup_fused_vs_indirect =
        mbps("quantized_partitioned_fused") / mbps("quantized_partitioned_indirect");
    let speedup_quantized_simd_vs_fused =
        mbps("quantized_partitioned_simd") / mbps("quantized_partitioned_fused");
    let speedup_batched = tiled_rows[0].coded_mbps / mbps("flooding_min_sum_f32");
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let tier = SimdTier::resolve(None);
    let features = detected_cpu_features();
    println!("\nspeedup (flooding_min_sum_f32 vs seed): {speedup:.2}x");
    println!(
        "speedup (flooding_table_sum_product_f32 vs PR-4 sum-product {PR4_SUM_PRODUCT_F32_MBPS} \
         Mbit/s): {speedup_table_vs_pr4:.2}x"
    );
    println!("speedup (quantized fused vs indirect partition): {speedup_fused_vs_indirect:.2}x");
    println!(
        "speedup (quantized {} lanes vs scalar fused): {speedup_quantized_simd_vs_fused:.2}x",
        quantized_simd_tier.name()
    );
    println!(
        "speedup (tiled batched x{BATCH}, 1 thread, vs single-frame min-sum f32): \
         {speedup_batched:.2}x"
    );
    for (m, &threads) in tiled_rows.iter().zip(THREAD_COUNTS.iter()) {
        println!(
            "tiled scaling: {threads} thread(s) -> {:.2} Mbit/s ({:.2}x of 1-thread)",
            m.coded_mbps,
            m.coded_mbps / tiled_rows[0].coded_mbps
        );
    }
    println!("cpu: {cores} core(s), dispatch tier {}, features {:?}", tier.name(), features);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"decoder_throughput\",\n");
    json.push_str(&format!(
        "  \"code\": {{\"n\": {n}, \"k\": {k}, \"rate\": \"1/2\", \"frame\": \"normal\"}},\n"
    ));
    json.push_str("  \"iterations\": 30,\n");
    json.push_str("  \"early_stop\": false,\n");
    json.push_str("  \"min_sum_alpha\": 0.8,\n");
    json.push_str("  \"units\": \"decoded Mbit/s; coded counts all N bits per frame, info counts the K systematic bits\",\n");
    json.push_str(&format!("  \"speedup_min_sum_f32_vs_seed\": {speedup:.3},\n"));
    json.push_str(&format!("  \"pr4_sum_product_f32_mbps\": {PR4_SUM_PRODUCT_F32_MBPS:.3},\n"));
    json.push_str(&format!("  \"speedup_sum_product_vs_pr4\": {speedup_table_vs_pr4:.3},\n"));
    json.push_str(&format!(
        "  \"speedup_quantized_fused_vs_indirect\": {speedup_fused_vs_indirect:.3},\n"
    ));
    json.push_str(&format!("  \"quantized_simd_tier\": \"{}\",\n", quantized_simd_tier.name()));
    json.push_str(&format!(
        "  \"speedup_quantized_simd_vs_fused\": {speedup_quantized_simd_vs_fused:.3},\n"
    ));
    json.push_str(&format!(
        "  \"cpu\": {{\"cores\": {cores}, \"single_vcpu\": {}, \"dispatch_tier\": \"{}\", \
         \"features\": [{}]}},\n",
        cores == 1,
        tier.name(),
        features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!("  \"batch_frames\": {BATCH},\n"));
    json.push_str(&format!("  \"speedup_batched_vs_single_min_sum_f32\": {speedup_batched:.3},\n"));
    json.push_str("  \"tiled_thread_scaling\": [\n");
    for (i, (m, &threads)) in tiled_rows.iter().zip(THREAD_COUNTS.iter()).enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"coded_mbps\": {:.3}, \"scaling_vs_1_thread\": \
             {:.3}}}{}\n",
            m.coded_mbps,
            m.coded_mbps / tiled_rows[0].coded_mbps,
            if i + 1 < tiled_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"results\": [\n");
    let all_rows: Vec<&Measurement> = rows.iter().chain(tiled_rows.iter()).collect();
    for (i, m) in all_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"coded_mbps\": {:.3}, \"info_mbps\": {:.3}, \"frames\": {}, \"seconds\": {:.3}}}{}\n",
            m.name,
            m.coded_mbps,
            m.info_mbps,
            m.frames,
            m.seconds,
            if i + 1 < all_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decoder.json");
    std::fs::write(out_path, &json)?;
    println!("wrote {out_path}");

    // Regression gate: the SIMD lane planes must never lose to the scalar
    // fused sweep they are dispatched above. (The ≥3x target is a release
    // goal on AVX-512 hosts; the CI floor is monotonicity, so a 1-vCPU
    // scalar-only runner still gates honestly.)
    if speedup_quantized_simd_vs_fused < 1.0 {
        eprintln!(
            "FAIL: quantized_partitioned_simd ({:.3}x) is slower than the scalar fused sweep",
            speedup_quantized_simd_vs_fused
        );
        std::process::exit(1);
    }
    Ok(())
}
