//! Parallelism ablation: the paper instantiates `P = 360` functional units
//! because the code structure delivers 360 independent edges per cycle.
//! Sub-parallel variants (processing the 360-edge bundles over several
//! cycles) trade throughput for logic area — the design space later DVB-S2
//! decoders (e.g. the Marchand/Boutillon line) explored.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin parallelism`

use dvbs2::hardware::{FuGateModel, ShuffleNetwork, ThroughputModel, ST_0_13_UM};
use dvbs2::ldpc::{CodeParams, CodeRate, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
    let tech = ST_0_13_UM;
    let fu = FuGateModel::for_frame(FrameSize::Normal, 6);
    // Memory area is parallelism-independent (same bits, different aspect).
    let memory_mm2 = tech.sram_mm2((233_280 + 48_600 + 64_800) * 6);

    println!(
        "Parallelism sweep, rate 1/2, 30 iterations @ {} MHz (memories fixed at {:.1} mm2)\n",
        tech.max_clock_mhz, memory_mm2
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "P", "T [Mbit/s]", "FU [mm2]", "net [mm2]", "total [mm2]", "Mbit/s per mm2"
    );
    for p in [45usize, 90, 180, 360, 720] {
        let model = ThroughputModel { p, ..ThroughputModel::paper(&tech) };
        let throughput = model.throughput_mbps(&params);
        let fu_mm2 = tech.logic_mm2(fu.gates() * p);
        // The rotator shrinks with lane count but needs the same total
        // bandwidth; stage count scales with log2(P).
        let net_mm2 = tech.logic_mm2(ShuffleNetwork::new(p.min(360)).gate_count(6))
            * tech.shuffle_wiring_factor;
        let total = memory_mm2 + fu_mm2 + net_mm2 + 0.2;
        println!(
            "{:>5} {:>12.1} {:>12.2} {:>12.2} {:>12.2} {:>14.1}",
            p,
            throughput,
            fu_mm2,
            net_mm2,
            total,
            throughput / total
        );
    }
    println!(
        "\nP = 360 is the structural sweet spot: one (shift, address) ROM entry feeds all\n\
         360 units per cycle; P = 720 would need two independent edge bundles per cycle,\n\
         which the DVB-S2 construction does not provide (shown only as an upper bound)."
    );
    Ok(())
}
