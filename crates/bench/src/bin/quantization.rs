//! Regenerates the **Section 2.1 quantization claims**: "the total
//! quantization loss is 0.1 dB when using a 6 bit message quantization
//! compared to infinite precision. For a 5 bit message quantization the
//! loss is larger."
//!
//! Sweeps Eb/N0 for the float, 6-bit and 5-bit zigzag decoders and
//! interpolates the Eb/N0 needed for a target BER.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin quantization [--frames N]`

use dvbs2::decoder::Quantizer;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::DecoderKind;
use dvbs2_bench::{ber_point, ebn0_at_ber, sci, system, BerPoint};

fn sweep(decoder: DecoderKind, label: &str, frames: usize) -> Vec<BerPoint> {
    let points: Vec<f64> = vec![0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];
    println!("\n{label}:");
    println!("{:>9} {:>12} {:>12} {:>8}", "Eb/N0[dB]", "BER", "FER", "frames");
    let mut out = Vec::new();
    for ebn0 in points {
        let sys = system(CodeRate::R1_2, FrameSize::Short, decoder, 30);
        let p = ber_point(&sys, ebn0, frames, 30);
        println!("{:>9.2} {:>12} {:>12} {:>8}", ebn0, sci(p.ber), sci(p.fer), p.frames);
        out.push(p);
    }
    out
}

fn main() {
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    println!(
        "Quantization loss, rate 1/2 short frames, zigzag schedule, 30 iterations, \
         {frames} frames per point"
    );

    let float = sweep(DecoderKind::Zigzag, "float (infinite precision)", frames);
    let q6 = sweep(
        DecoderKind::Quantized(Quantizer::paper_6bit()),
        "6-bit messages (paper's choice)",
        frames,
    );
    let q5 = sweep(DecoderKind::Quantized(Quantizer::paper_5bit()), "5-bit messages", frames);

    let target = 1e-3;
    println!("\nEb/N0 @ BER {target:.0e} (interpolated):");
    let reference = ebn0_at_ber(&float, target);
    for (label, points) in [("float", &float), ("6-bit", &q6), ("5-bit", &q5)] {
        match (ebn0_at_ber(points, target), reference) {
            (Some(x), Some(r)) => {
                println!("  {label:<7} {x:>6.2} dB   loss vs float: {:+.2} dB", x - r)
            }
            _ => println!("  {label:<7} not bracketed by the sweep (raise --frames)"),
        }
    }
    println!("\nPaper claim: ~0.1 dB loss at 6 bits; larger at 5 bits.");
}
