//! Regenerates **Table 2** of the paper (code-rate dependent parameters:
//! `q`, `E_PN`, `E_IN`, `Addr`) and the **Figure 3** mapping statistics:
//! how information and check nodes map onto the 360 functional units, and
//! how many `(shift, address)` ROM entries store the whole connectivity.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin table2`

use dvbs2::hardware::ConnectivityRom;
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize, PARALLELISM};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 2: code-rate dependent parameters (N = 64800)\n");
    println!(
        "{:>6} {:>5} {:>8} {:>8} {:>6} {:>10}",
        "Rate", "q", "E_PN", "E_IN", "Addr", "ROM bits"
    );
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let p = code.params();
        let rom = ConnectivityRom::build(p, code.table());
        assert_eq!(rom.words(), p.addr_entries());
        println!(
            "{:>6} {:>5} {:>8} {:>8} {:>6} {:>10}",
            rate.to_string(),
            p.q,
            p.e_pn(),
            p.e_in(),
            p.addr_entries(),
            rom.storage_bits()
        );
    }

    // Figure 3: the R = 1/2 mapping the paper illustrates.
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal)?;
    let p = code.params();
    let rom = ConnectivityRom::build(p, code.table());
    println!("\nFigure 3 mapping check (R = 1/2):");
    println!("  {} information nodes -> {} functional units,", p.k, PARALLELISM);
    println!("  {} nodes per unit ({} groups of 360),", p.groups(), p.groups());
    println!("  {} check nodes -> {} per unit (q = {}),", p.n_check, p.q, p.q);
    println!(
        "  message RAM: {} words x 360 lanes x 6 bit = {} bits,",
        rom.words(),
        rom.words() * PARALLELISM * 6
    );
    println!(
        "  connectivity ROM: {} entries ({} bits total) — the paper stores 450 for R = 1/2.",
        rom.words(),
        rom.storage_bits()
    );

    // Each residue row must contain exactly k-2 entries: the guarantee that
    // every functional unit processes the same number of edges (Eq. 6).
    for r in 0..rom.row_count() {
        assert_eq!(rom.row(r).len(), p.check_degree - 2);
    }
    println!(
        "  Eq. 6 verified: every unit processes q(k-2) = {} edges per half-iteration.",
        p.q * (p.check_degree - 2)
    );
    Ok(())
}
