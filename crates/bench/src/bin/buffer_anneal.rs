//! Regenerates the **Figure 5 / simulated-annealing result**: the
//! hierarchical 4-bank single-port message RAM needs only a small conflict
//! buffer once the check-phase read schedule is annealed — "only one buffer
//! is required ... for all code rates".
//!
//! Also sweeps the bank-count design choice (1/2/4/8) as the ablation
//! called out in DESIGN.md §5.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin buffer_anneal`

use dvbs2::hardware::{optimize_schedule, AnnealOptions, ConnectivityRom, MemoryConfig};
use dvbs2::ldpc::{CodeRate, DvbS2Code, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 5: conflict-buffer sizing of the 4-bank message RAM (normal frames)\n");
    println!(
        "{:>6} {:>7} {:>13} {:>13} {:>12} {:>12}",
        "rate", "reads", "naive buffer", "annealed buf", "naive drain", "anneal drain"
    );
    let mut worst_annealed = 0usize;
    for rate in CodeRate::ALL {
        let code = DvbS2Code::new(rate, FrameSize::Normal)?;
        let rom = ConnectivityRom::build(code.params(), code.table());
        let result = optimize_schedule(&rom, MemoryConfig::default(), AnnealOptions::default());
        worst_annealed = worst_annealed.max(result.optimized.max_buffer);
        println!(
            "{:>6} {:>7} {:>13} {:>13} {:>12} {:>12}",
            rate.to_string(),
            result.baseline.read_cycles,
            result.baseline.max_buffer,
            result.optimized.max_buffer,
            result.baseline.total_cycles - result.baseline.read_cycles,
            result.optimized.total_cycles - result.optimized.read_cycles,
        );
    }
    println!(
        "\nA single buffer of {worst_annealed} wide words covers all code rates after annealing \
         (the paper: one small buffer for all rates)."
    );

    println!("\nAblation: bank count (rate 1/2, annealed schedules):\n");
    println!("{:>6} {:>13} {:>13} {:>12}", "banks", "naive buffer", "annealed buf", "drain");
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal)?;
    let rom = ConnectivityRom::build(code.params(), code.table());
    for banks in [1usize, 2, 4, 8] {
        let memory = MemoryConfig { banks, ..MemoryConfig::default() };
        let result = optimize_schedule(&rom, memory, AnnealOptions::default());
        println!(
            "{:>6} {:>13} {:>13} {:>12}",
            banks,
            result.baseline.max_buffer,
            result.optimized.max_buffer,
            result.optimized.total_cycles - result.optimized.read_cycles,
        );
    }
    println!(
        "\nOne bank serializes everything behind the read port; four banks (the paper's \
         2-LSB partition) make the conflicts annealable to a tiny buffer."
    );
    Ok(())
}
