//! Streaming-pipeline soak: sustained multi-threaded mixed-rate decoding
//! with bounded memory, checked against a single-threaded reference.
//!
//! Two phases:
//!
//! 1. **Parity** — admission control off, blocking submits. The decoded
//!    stream must be *bit-identical* to decoding the same seeded frame
//!    stream single-threaded, in exact submission order. Sustained decode
//!    throughput (Mbit/s) is recorded.
//! 2. **Backpressure** — tiny queues, `try_submit` with retry, adaptive
//!    admission. The pipeline must reject explicitly instead of dropping:
//!    zero dropped frames, in-order output, bounded queue watermarks.
//!
//! Results land in `BENCH_pipeline.json` at the repository root. Any
//! violated contract prints and exits non-zero (the `pipeline-soak` CI job
//! runs `--quick`).

use dvbs2::channel::{mix_seed, FrameTag, LlrSource, Modulation};
use dvbs2::decoder::{detected_cpu_features, SimdTier};
use dvbs2::ldpc::{BitVec, CodeRate, FrameSize};
use dvbs2::{Modcod, ModcodTable};
use dvbs2_pipeline::{
    AdmissionPolicy, DecodePipeline, DecodedFrame, PipelineConfig, PipelineStats, SoftFrame,
    SubmitError,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: pipeline_soak [--frames N] [--seed S] [--workers W] [--quick]\n\
         \n\
         --frames N   frames per phase (default 400)\n\
         --seed S     stream seed, decimal or 0x-hex (default 0x50AC)\n\
         --workers W  worker threads (default: available parallelism)\n\
         --quick      CI budget: 160 parity + 96 backpressure frames"
    );
    std::process::exit(2);
}

struct Options {
    frames: u64,
    backpressure_frames: u64,
    seed: u64,
    workers: usize,
}

fn parse_u64(text: &str) -> Option<u64> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

fn parse_args() -> Options {
    let mut options = Options {
        frames: 400,
        backpressure_frames: 240,
        seed: 0x50AC,
        workers: dvbs2::channel::default_threads(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--frames" => match args.next().as_deref().and_then(parse_u64) {
                Some(n) if n > 0 => {
                    options.frames = n;
                    options.backpressure_frames = (n * 3 / 5).max(1);
                }
                _ => usage(),
            },
            "--seed" => match args.next().as_deref().and_then(parse_u64) {
                Some(s) => options.seed = s,
                None => usage(),
            },
            "--workers" => match args.next().as_deref().and_then(parse_u64) {
                Some(w) if w > 0 => options.workers = w as usize,
                _ => usage(),
            },
            "--quick" => {
                options.frames = 160;
                options.backpressure_frames = 96;
            }
            _ => usage(),
        }
    }
    options
}

/// Deterministic index-addressed mixed-rate stream: frame `i` transmits
/// under slot `i % 3`, seeded by `mix_seed(seed, i)` — the same bits no
/// matter which thread generates or decodes it.
struct SoakSource {
    table: ModcodTable,
    seed: u64,
    ebn0_offset_db: f64,
}

fn anchor_db(rate: CodeRate) -> f64 {
    match rate {
        CodeRate::R1_2 => 1.4,
        CodeRate::R3_4 => 2.8,
        CodeRate::R8_9 => 4.2,
        _ => 2.0,
    }
}

impl LlrSource for SoakSource {
    fn tag(&self, index: u64) -> FrameTag {
        FrameTag { stream_index: index, modcod: (index % self.table.len() as u64) as usize }
    }

    fn fill(&mut self, index: u64, out: &mut Vec<f64>) {
        let tag = self.tag(index);
        let entry = self.table.entry(tag.modcod);
        let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed, index));
        let ebn0 = anchor_db(entry.modcod.rate) + self.ebn0_offset_db;
        let frame = entry.system().transmit_frame(&mut rng, ebn0);
        out.clear();
        out.extend_from_slice(&frame.llrs);
    }
}

fn soak_table() -> ModcodTable {
    ModcodTable::build(&[
        Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
        Modcod::new(Modulation::Bpsk, CodeRate::R3_4, FrameSize::Short),
        Modcod::new(Modulation::Bpsk, CodeRate::R8_9, FrameSize::Short),
    ])
    .unwrap()
}

/// Pre-materialized stream (generation off the decode clock).
fn materialize(source: &mut SoakSource, frames: u64) -> Vec<SoftFrame> {
    (0..frames).map(|i| SoftFrame::from(source.frame(i))).collect()
}

struct PhaseOutcome {
    outputs: Vec<DecodedFrame>,
    stats: PipelineStats,
    seconds: f64,
    rejections: u64,
}

/// Blocking-submit run: every frame admitted, consumer drains concurrently.
fn run_parity_phase(table: &ModcodTable, stream: &[SoftFrame], workers: usize) -> PhaseOutcome {
    let pipeline = DecodePipeline::start(
        table.clone(),
        PipelineConfig {
            workers,
            ingress_capacity: 32,
            egress_capacity: 32,
            max_in_flight: 96,
            admission: AdmissionPolicy::Off,
            log_every: 200,
            ..PipelineConfig::default()
        },
    );
    let started = Instant::now();
    let outputs = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::with_capacity(stream.len());
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() == stream.len() {
                    break;
                }
            }
            outputs
        });
        for frame in stream {
            pipeline.submit(frame.clone()).expect("blocking submit only fails at shutdown");
        }
        consumer.join().expect("consumer thread")
    });
    let seconds = started.elapsed().as_secs_f64();
    PhaseOutcome { outputs, stats: pipeline.finish(), seconds, rejections: 0 }
}

/// Try-submit run under pressure: tiny queues, adaptive admission.
fn run_backpressure_phase(
    table: &ModcodTable,
    stream: &[SoftFrame],
    workers: usize,
) -> PhaseOutcome {
    let pipeline = DecodePipeline::start(
        table.clone(),
        PipelineConfig {
            workers: workers.min(2),
            ingress_capacity: 4,
            egress_capacity: 4,
            max_in_flight: 10,
            admission: AdmissionPolicy::Adaptive { min_iterations: 4 },
            min_batch: 1,
            max_batch: 2,
            ..PipelineConfig::default()
        },
    );
    let started = Instant::now();
    let (outputs, rejections) = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::with_capacity(stream.len());
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() == stream.len() {
                    break;
                }
            }
            outputs
        });
        let mut rejections = 0u64;
        for frame in stream {
            let mut pending = frame.clone();
            loop {
                match pipeline.try_submit(pending) {
                    Ok(_) => break,
                    Err(SubmitError::Rejected(back)) => {
                        rejections += 1;
                        pending = back;
                        std::thread::yield_now();
                    }
                    Err(other) => panic!("unexpected submit error: {other:?}"),
                }
            }
        }
        (consumer.join().expect("consumer thread"), rejections)
    });
    let seconds = started.elapsed().as_secs_f64();
    PhaseOutcome { outputs, stats: pipeline.finish(), seconds, rejections }
}

/// Single-threaded reference over the same stream: one reused decoder per
/// slot, frames in order — what the pipeline output must match bit for bit.
fn reference_decode(table: &ModcodTable, stream: &[SoftFrame]) -> (Vec<BitVec>, f64) {
    let mut decoders: Vec<_> = (0..table.len()).map(|s| table.entry(s).make_decoder()).collect();
    let started = Instant::now();
    let bits = stream.iter().map(|frame| decoders[frame.modcod].decode(&frame.llrs).bits).collect();
    (bits, started.elapsed().as_secs_f64())
}

fn info_megabits(table: &ModcodTable, stream: &[SoftFrame]) -> f64 {
    stream.iter().map(|f| table.entry(f.modcod).info_len() as f64).sum::<f64>() / 1e6
}

fn coded_megabits(stream: &[SoftFrame]) -> f64 {
    stream.iter().map(|f| f.llrs.len() as f64).sum::<f64>() / 1e6
}

fn check_common(
    label: &str,
    outcome: &PhaseOutcome,
    expected_frames: u64,
    violations: &mut Vec<String>,
) {
    let stats = &outcome.stats;
    let mut check = |ok: bool, what: String| {
        if !ok {
            violations.push(format!("[{label}] {what}"));
        }
    };
    check(
        outcome.outputs.len() as u64 == expected_frames,
        format!("consumed {} of {expected_frames} frames", outcome.outputs.len()),
    );
    for (i, out) in outcome.outputs.iter().enumerate() {
        if out.seq != i as u64 || out.stream_index != i as u64 {
            check(
                false,
                format!(
                    "out-of-order at position {i}: seq {} stream {}",
                    out.seq, out.stream_index
                ),
            );
            break;
        }
    }
    check(stats.dropped == 0, format!("{} dropped frames", stats.dropped));
    check(stats.submitted == expected_frames, format!("submitted {}", stats.submitted));
    check(stats.decoded == expected_frames, format!("decoded {}", stats.decoded));
    check(stats.emitted == expected_frames, format!("emitted {}", stats.emitted));
    check(
        stats.offered == stats.submitted + stats.rejected,
        format!(
            "offered {} != submitted {} + rejected {}",
            stats.offered, stats.submitted, stats.rejected
        ),
    );
    check(
        stats.histogram_total() == stats.decoded,
        format!("histogram total {} != decoded {}", stats.histogram_total(), stats.decoded),
    );
    check(stats.in_flight == 0, format!("{} frames still in flight", stats.in_flight));
}

fn main() {
    let options = parse_args();
    let table = soak_table();
    let mut violations: Vec<String> = Vec::new();

    // ---- phase 1: bit parity at an operating point with plenty of early
    // stops (this is where sustained throughput is measured) ---------------
    let mut source = SoakSource { table: table.clone(), seed: options.seed, ebn0_offset_db: 0.6 };
    let stream = materialize(&mut source, options.frames);
    println!(
        "parity phase: {} frames, {} workers, slots {:?}",
        options.frames,
        options.workers,
        (0..table.len()).map(|s| table.entry(s).modcod.rate).collect::<Vec<_>>()
    );
    let (reference, reference_seconds) = reference_decode(&table, &stream);
    let parity = run_parity_phase(&table, &stream, options.workers);
    check_common("parity", &parity, options.frames, &mut violations);
    let mismatches = parity
        .outputs
        .iter()
        .zip(&reference)
        .filter(|(out, reference_bits)| &out.bits != *reference_bits)
        .count();
    if mismatches > 0 {
        violations.push(format!(
            "[parity] {mismatches} of {} frames differ from the single-threaded reference",
            options.frames
        ));
    }
    if parity.stats.rejected != 0 {
        violations.push(format!(
            "[parity] blocking submits must never reject ({} rejected)",
            parity.stats.rejected
        ));
    }
    let parity_info_mbps = info_megabits(&table, &stream) / parity.seconds;
    let parity_coded_mbps = coded_megabits(&stream) / parity.seconds;
    let speedup = reference_seconds / parity.seconds;
    let speedup_note = if options.workers == 1 {
        "single vCPU (no speedup comparison)".to_string()
    } else {
        format!("{speedup:.2}x vs single thread")
    };
    println!(
        "parity: {:.1} info Mbit/s ({:.1} coded), {speedup_note}, \
         early-stop rate {:.0}%, mean {:.1} iterations",
        parity_info_mbps,
        parity_coded_mbps,
        100.0 * parity.stats.early_stop_rate(),
        parity.stats.mean_iterations(),
    );

    // ---- per-worker-count scaling over the same parity stream ------------
    // Recorded honestly: on a single-vCPU host the extra workers only add
    // contention, and the rows show it instead of a lone `workers: 1` entry
    // masking the question.
    let scaling_counts: [usize; 3] = [1, 2, 4];
    let mut scaling_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &w in &scaling_counts {
        let run = run_parity_phase(&table, &stream, w);
        check_common(&format!("scaling-w{w}"), &run, options.frames, &mut violations);
        let mbps = info_megabits(&table, &stream) / run.seconds;
        scaling_rows.push((w, run.seconds, mbps));
        println!(
            "scaling: {w} worker(s) -> {:.1} info Mbit/s ({:.2}x of 1 worker)",
            mbps,
            mbps / scaling_rows[0].2
        );
    }

    // ---- phase 2: backpressure under pressure (harder frames, tiny
    // queues, adaptive admission) ------------------------------------------
    let mut source =
        SoakSource { table: table.clone(), seed: options.seed ^ 0xBACC, ebn0_offset_db: -0.4 };
    let pressure_stream = materialize(&mut source, options.backpressure_frames);
    println!(
        "backpressure phase: {} frames, {} workers, ingress capacity 4",
        options.backpressure_frames,
        options.workers.min(2)
    );
    let pressure = run_backpressure_phase(&table, &pressure_stream, options.workers);
    check_common("backpressure", &pressure, options.backpressure_frames, &mut violations);
    if pressure.stats.rejected != pressure.rejections {
        violations.push(format!(
            "[backpressure] rejection accounting: stats {} vs caller {}",
            pressure.stats.rejected, pressure.rejections
        ));
    }
    if pressure.stats.ingress_watermark > 4 {
        violations.push(format!(
            "[backpressure] ingress watermark {} exceeds capacity 4",
            pressure.stats.ingress_watermark
        ));
    }
    let pressure_info_mbps = info_megabits(&table, &pressure_stream) / pressure.seconds;
    println!(
        "backpressure: {:.1} info Mbit/s, {} rejections, {} shed decodes, watermark {}",
        pressure_info_mbps,
        pressure.rejections,
        pressure.stats.shed,
        pressure.stats.ingress_watermark,
    );

    // ---- record ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"pipeline_soak\",\n");
    json.push_str(&format!("  \"seed\": {},\n", options.seed));
    json.push_str(&format!("  \"workers\": {},\n", options.workers));
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let tier = SimdTier::resolve(None);
    let features = detected_cpu_features();
    json.push_str(&format!(
        "  \"cpu\": {{\"cores\": {cores}, \"single_vcpu\": {}, \"dispatch_tier\": \"{}\", \
         \"features\": [{}]}},\n",
        cores == 1,
        tier.name(),
        features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"slots\": [\"1/2 short\", \"3/4 short\", \"8/9 short\"],\n");
    json.push_str(
        "  \"units\": \"sustained decoded Mbit/s over the whole phase, \
         frame generation excluded\",\n",
    );
    // On a single-vCPU host a parallel-vs-serial ratio only measures pipeline
    // overhead, so flag the situation instead of recording a misleading number.
    let speedup_field = if options.workers == 1 {
        "\"single_vcpu\": true".to_string()
    } else {
        format!("\"speedup_vs_single_thread\": {speedup:.3}")
    };
    json.push_str(&format!(
        "  \"parity\": {{\"frames\": {}, \"seconds\": {:.3}, \"info_mbps\": {:.3}, \
         \"coded_mbps\": {:.3}, {speedup_field}, \
         \"early_stop_rate\": {:.4}, \"mean_iterations\": {:.3}}},\n",
        options.frames,
        parity.seconds,
        parity_info_mbps,
        parity_coded_mbps,
        parity.stats.early_stop_rate(),
        parity.stats.mean_iterations(),
    ));
    json.push_str("  \"worker_scaling\": [\n");
    for (i, &(w, seconds, mbps)) in scaling_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {w}, \"seconds\": {seconds:.3}, \"info_mbps\": {mbps:.3}, \
             \"scaling_vs_1_worker\": {:.3}}}{}\n",
            mbps / scaling_rows[0].2,
            if i + 1 < scaling_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"backpressure\": {{\"frames\": {}, \"seconds\": {:.3}, \"info_mbps\": {:.3}, \
         \"rejected\": {}, \"shed\": {}, \"dropped\": {}, \"ingress_watermark\": {}}}\n",
        options.backpressure_frames,
        pressure.seconds,
        pressure_info_mbps,
        pressure.stats.rejected,
        pressure.stats.shed,
        pressure.stats.dropped,
        pressure.stats.ingress_watermark,
    ));
    json.push_str("}\n");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pipeline.json");
    println!("wrote {out_path}");

    if !violations.is_empty() {
        eprintln!("\n{} contract violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("pipeline soak clean");
}
