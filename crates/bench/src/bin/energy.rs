//! Energy estimates per code rate (extension — the paper reports no power
//! numbers; the model prices the architectural activity the cycle-accurate
//! core determines, at representative 0.13 µm per-event energies).
//!
//! Run: `cargo run --release -p dvbs2-bench --bin energy`

use dvbs2::hardware::{EnergyModel, MemoryConfig, Technology};
use dvbs2::ldpc::{CodeParams, CodeRate, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = EnergyModel::default_0_13um();
    let tech = Technology::default();
    println!("Energy model (0.13 um, 6-bit messages, 30 iterations) — extension\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "rate", "frame [uJ]", "nJ/bit", "power [mW]", "RAM share"
    );
    for rate in CodeRate::ALL {
        let p = CodeParams::new(rate, FrameSize::Normal)?;
        let report = model.frame_energy(&p, 30);
        let power = model.average_power_mw(&p, 30, &tech, MemoryConfig::default());
        let ram_share = (report.message_ram_nj + report.side_ram_nj) / report.total_nj();
        println!(
            "{:>6} {:>12.1} {:>12.2} {:>12.0} {:>11.0}%",
            rate.to_string(),
            report.total_nj() / 1e3,
            report.nj_per_bit(),
            power,
            ram_share * 100.0
        );
    }
    println!("\nBreakdown for the paper's R = 1/2 reference point:");
    let p = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
    println!("{}", model.frame_energy(&p, 30));
    println!(
        "\nEarly termination leverage: at high SNR the zigzag decoder converges in far\n\
         fewer than 30 iterations (see ber_waterfall's iteration column), and energy\n\
         scales linearly with iterations."
    );
    Ok(())
}
