//! Girth-conditioning ablation: the table generator's 4-cycle avoidance
//! (on by default, matching the standard's tables) versus plain random
//! tables — sampled local-girth histograms and the BER consequence.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin girth`

use dvbs2::channel::StopRule;
use dvbs2::decoder::{Decoder, DecoderConfig, ZigzagDecoder};
use dvbs2::ldpc::{
    AddressTable, CodeParams, CodeRate, DvbS2Code, FrameSize, TableOptions, TannerGraph,
};
use dvbs2::{Dvbs2System, SystemConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

fn girth_histogram(graph: &TannerGraph, samples: usize) -> BTreeMap<usize, usize> {
    let stride = (graph.var_count() / samples).max(1);
    let mut hist = BTreeMap::new();
    for v in (0..graph.var_count()).step_by(stride) {
        let g = graph.local_girth(v, 10).unwrap_or(12);
        *hist.entry(g).or_insert(0usize) += 1;
    }
    hist
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = CodeRate::R1_2;
    let frame = FrameSize::Short;
    let params = CodeParams::new(rate, frame)?;

    println!("Girth-conditioning ablation, rate {rate} {frame} frames\n");
    for conditioned in [true, false] {
        let table = AddressTable::generate(
            &params,
            TableOptions { avoid_girth4: conditioned, ..TableOptions::default() },
        );
        let graph = TannerGraph::for_code(&params, &table);
        let hist = girth_histogram(&graph, 400);
        let label = if conditioned { "conditioned (default)" } else { "unconditioned" };
        println!("{label}: sampled local-girth histogram (12 = none found up to 10):");
        for (g, count) in &hist {
            println!("  girth {g:>2}: {count}");
        }
        let four: usize = hist.get(&4).copied().unwrap_or(0);
        println!("  4-cycles through sampled nodes: {four}\n");
    }

    // BER consequence at one near-threshold point.
    println!("BER at Eb/N0 = 1.1 dB (zigzag, 30 iterations, 60 frames):");
    let system = Dvbs2System::new(SystemConfig { rate, frame, ..SystemConfig::default() })?;
    let est = system.simulate_ber(1.1, StopRule::frames(60), dvbs2::channel::default_threads());
    println!("  conditioned:   BER {:.2e}  FER {:.2e}", est.ber(), est.fer());

    // Unconditioned code, same channel realizations are not directly
    // comparable through the facade; measure with a local loop.
    let table = AddressTable::generate(
        &params,
        TableOptions { avoid_girth4: false, ..TableOptions::default() },
    );
    let code = DvbS2Code::from_table(rate, frame, table.rows().to_vec())?;
    let graph = Arc::new(code.tanner_graph());
    let enc = code.encoder()?;
    let mut dec = ZigzagDecoder::new(graph, DecoderConfig::default());
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(99);
    let sigma = dvbs2::channel::noise_sigma(1.1, params.k as f64 / params.n as f64);
    let mut bit_errors = 0usize;
    let mut frame_errors = 0usize;
    let frames = 60;
    for _ in 0..frames {
        let cw = enc.encode(&enc.random_message(&mut rng))?;
        let mut samples = dvbs2::channel::Modulation::Bpsk.modulate(&cw);
        dvbs2::channel::AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
        let llrs = dvbs2::channel::Modulation::Bpsk.demap(&samples, sigma);
        let out = dec.decode(&llrs);
        let errs = out.info_bit_errors(&cw, params.k);
        bit_errors += errs;
        frame_errors += usize::from(errs > 0);
    }
    println!(
        "  unconditioned: BER {:.2e}  FER {:.2e}",
        bit_errors as f64 / (frames * params.k) as f64,
        frame_errors as f64 / frames as f64
    );
    println!(
        "\n4-cycles feed a message back to its sender after two iterations; avoiding them \
         is\nstandard code-construction hygiene and the DVB-S2 annex tables satisfy it."
    );
    Ok(())
}
