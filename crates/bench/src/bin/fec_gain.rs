//! Quantifies the outer-BCH contribution (extension X2): frame error rates
//! before and after the BCH stage across the LDPC waterfall.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin fec_gain [--frames N]`

use dvbs2::channel::{noise_sigma, AwgnChannel, Modulation};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{FecChain, SystemConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);
    let mut chain = FecChain::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        ..SystemConfig::default()
    })?;
    println!(
        "Outer BCH gain, rate 1/2 short frames, {} data bits, t = 12, {frames} frames/point\n",
        chain.data_len()
    );
    println!(
        "{:>9} {:>12} {:>12} {:>10} {:>12}",
        "Eb/N0[dB]", "LDPC FER", "post-BCH FER", "rescued", "flagged"
    );
    for ebn0 in [0.9f64, 1.0, 1.1, 1.2] {
        let mut rng = SmallRng::seed_from_u64(4242);
        let sigma = noise_sigma(ebn0, chain.rate());
        let mut ldpc_errors = 0usize;
        let mut post_errors = 0usize;
        let mut rescued = 0usize;
        let mut flagged = 0usize;
        for _ in 0..frames {
            let data = chain.random_data(&mut rng);
            let frame = chain.encode(&data)?;
            let mut samples = Modulation::Bpsk.modulate(&frame);
            AwgnChannel::new(sigma).corrupt(&mut rng, &mut samples);
            let llrs = Modulation::Bpsk.demap(&samples, sigma);
            let out = chain.decode(&llrs);
            let ldpc_wrong = !out.ldpc_converged || out.bch_corrected.unwrap_or(1) > 0;
            let post_wrong = out.data != data;
            ldpc_errors += usize::from(ldpc_wrong);
            post_errors += usize::from(post_wrong);
            if ldpc_wrong && !post_wrong {
                rescued += 1;
            }
            if out.bch_corrected.is_none() {
                flagged += 1;
            }
        }
        println!(
            "{:>9.2} {:>12.3} {:>12.3} {:>10} {:>12}",
            ebn0,
            ldpc_errors as f64 / frames as f64,
            post_errors as f64 / frames as f64,
            rescued,
            flagged
        );
    }
    println!(
        "\nThe BCH stage converts near-threshold residual-error frames into clean frames\n\
         (rescued) and marks heavy failures (flagged) — no undetected wrong frames."
    );
    Ok(())
}
