//! Differential decode fuzzer: runs the `dvbs2::oracle` decoder matrix on
//! generated cases and reports every contract violation, shrunk to a
//! minimal reproducer.
//!
//! Run:  `cargo run --release -p dvbs2-bench --bin diff_fuzz -- --cases 500`
//! Repro: `cargo run --release -p dvbs2-bench --bin diff_fuzz -- --repro 'seed=.. rate=.. ...'`
//!
//! Exits non-zero when any contract is violated.

use dvbs2::decoder::SimdTier;
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::oracle::{self, CaseSpec, OracleConfig};

/// The SIMD dispatch tiers the sweeps fan the quantized lane path across
/// on this host, e.g. `"scalar+avx2+avx512"`.
fn tier_names() -> String {
    SimdTier::available().iter().map(|t| t.name()).collect::<Vec<_>>().join("+")
}

struct Args {
    cases: u64,
    fault_cases: u64,
    fabric_cases: u64,
    seed: u64,
    threads: usize,
    repro: Option<String>,
    skip_faults: bool,
    skip_partition: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 500,
        fault_cases: 500,
        fabric_cases: 0,
        seed: 0xD1FF,
        threads: dvbs2::channel::default_threads(),
        repro: None,
        skip_faults: false,
        skip_partition: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--cases" => args.cases = value("--cases").parse().unwrap_or_else(|_| usage("--cases")),
            "--fault-cases" => {
                args.fault_cases =
                    value("--fault-cases").parse().unwrap_or_else(|_| usage("--fault-cases"));
            }
            "--fabric-cases" => {
                args.fabric_cases =
                    value("--fabric-cases").parse().unwrap_or_else(|_| usage("--fabric-cases"));
            }
            "--seed" => {
                let text = value("--seed");
                let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse(),
                };
                args.seed = parsed.unwrap_or_else(|_| usage("--seed"));
            }
            "--threads" => {
                args.threads = value("--threads").parse().unwrap_or_else(|_| usage("--threads"));
            }
            "--repro" => args.repro = Some(value("--repro")),
            "--skip-faults" => args.skip_faults = true,
            "--skip-partition" => args.skip_partition = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(problem: &str) -> ! {
    eprintln!("diff_fuzz: {problem}");
    eprintln!(
        "usage: diff_fuzz [--cases N] [--fault-cases N] [--fabric-cases N] [--seed S] \
         [--threads T] [--skip-faults] [--skip-partition] [--repro 'spec']"
    );
    std::process::exit(2);
}

fn main() {
    let args = parse_args();

    if let Some(spec_text) = &args.repro {
        let case: CaseSpec = match spec_text.parse() {
            Ok(case) => case,
            Err(e) => usage(&e.to_string()),
        };
        println!("replaying {case}");
        let violations = oracle::run_case(0, &case);
        if violations.is_empty() {
            println!("clean: no contract violated");
            return;
        }
        for v in &violations {
            println!("VIOLATION {v}");
        }
        std::process::exit(1);
    }

    let config = OracleConfig { master_seed: args.seed, cases: args.cases, threads: args.threads };
    println!(
        "differential oracle: {} cases, master seed {:#x}, {} threads",
        config.cases, config.master_seed, config.threads
    );
    let report = oracle::run(&config);
    println!(
        "covered {} rates ({}), {} frame sizes",
        report.rates_covered.len(),
        report.rates_covered.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(" "),
        report.frames_covered.len(),
    );

    let mut failed = false;
    if report.clean() {
        println!("equivalence contracts: PASS ({} cases, 0 violations)", report.cases);
    } else {
        failed = true;
        println!("equivalence contracts: FAIL ({} violations)", report.violations.len());
        for v in &report.violations {
            println!("\nVIOLATION {v}");
            let contract = v.contract;
            let shrunk = oracle::shrink_case(&v.case, |candidate| {
                oracle::run_case(v.case_index, candidate)
                    .iter()
                    .any(|found| found.contract == contract)
            });
            println!("  shrunk repro: --repro '{shrunk}'");
        }
    }

    if args.fault_cases > 0 {
        // Fault differential: every case carries a RAM fault, and the
        // faulted core must stay bit-exact (decisions and per-iteration
        // message digests) against the equally-faulted golden model.
        let fault_config = OracleConfig {
            master_seed: args.seed ^ 0xFA17,
            cases: args.fault_cases,
            threads: args.threads,
        };
        let fr = oracle::run_fault_differential(&fault_config);
        if fr.clean() {
            println!(
                "fault differential: PASS ({} faulted cases, bit-exact; sw lane tiers {})",
                fr.cases,
                tier_names()
            );
        } else {
            failed = true;
            println!("fault differential: FAIL ({} violations)", fr.violations.len());
            for v in &fr.violations {
                println!("\nFAULT-DIFF VIOLATION {v}");
                println!("  repro: --repro '{}'", v.case);
            }
        }
    }

    if args.fabric_cases > 0 {
        // Fabric differential: every case runs the multi-core fabric
        // cross-check (odd indices with a forced fault scenario on top);
        // every frame must stay bit-exact against the single core and the
        // cycle counts must decompose exactly.
        let fabric_config = OracleConfig {
            master_seed: args.seed ^ 0xFAB0,
            cases: args.fabric_cases,
            threads: args.threads,
        };
        let fr = oracle::run_fabric_sweep(&fabric_config);
        if fr.clean() {
            println!("fabric differential: PASS ({} multi-core cases, bit-exact)", fr.cases);
        } else {
            failed = true;
            println!("fabric differential: FAIL ({} violations)", fr.violations.len());
            for v in &fr.violations {
                println!("\nFABRIC VIOLATION {v}");
                let contract = v.contract;
                let shrunk = oracle::shrink_case(&v.case, |candidate| {
                    oracle::run_case(v.case_index, candidate)
                        .iter()
                        .any(|found| found.contract == contract)
                });
                println!("  shrunk repro: --repro '{shrunk}'");
            }
        }
    }

    if !args.skip_partition {
        // Boundary-exact mode across every defined rate/frame code point
        // (11 Normal-frame rates + 10 Short-frame rates).
        let pr = oracle::run_partition_sweep(args.seed, args.threads);
        if pr.clean() {
            println!(
                "partition sweep: PASS ({} cases across {} rates x {} frame sizes, \
                 bit-exact at tiers {})",
                pr.cases,
                pr.rates_covered.len(),
                pr.frames_covered.len(),
                tier_names()
            );
        } else {
            failed = true;
            println!("partition sweep: FAIL ({} violations)", pr.violations.len());
            for v in &pr.violations {
                println!("\nPARTITION VIOLATION {v}");
            }
        }
    }

    if !args.skip_faults {
        let points = [
            (CodeRate::R1_2, FrameSize::Short),
            (CodeRate::R2_3, FrameSize::Short),
            (CodeRate::R1_2, FrameSize::Normal),
        ];
        let mut scenarios = 0;
        let mut fault_violations = 0;
        for (rate, frame) in points {
            let fr = oracle::run_fault_suite(rate, frame, args.seed);
            scenarios += fr.scenarios;
            fault_violations += fr.violations.len();
            for v in &fr.violations {
                println!("FAULT VIOLATION ({rate}, {frame}): {v}");
            }
        }
        if fault_violations == 0 {
            println!("fault injection: PASS ({scenarios} scenarios, graceful degradation)");
        } else {
            failed = true;
            println!("fault injection: FAIL ({fault_violations} violations)");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
