//! Effective throughput with syndrome-based early termination — the
//! operational gain the paper's fixed-30-iteration accounting leaves on
//! the table. Measures the mean iteration count of the zigzag decoder per
//! Eb/N0 and feeds it into the Eq. 8 cycle model.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin dynamic_throughput`

use dvbs2::hardware::{ThroughputModel, ST_0_13_UM};
use dvbs2::ldpc::{CodeParams, CodeRate, FrameSize};
use dvbs2::DecoderKind;
use dvbs2_bench::{ber_point, system};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = CodeRate::R1_2;
    // Normal-frame parameters price the hardware; the iteration statistics
    // come from the (much faster) short-frame simulation — iteration
    // counts at matched distance-to-threshold are nearly length-invariant.
    let hw_params = CodeParams::new(rate, FrameSize::Normal)?;
    let model = ThroughputModel::paper(&ST_0_13_UM);
    let fixed = model.throughput_mbps(&hw_params);

    println!(
        "Early-termination throughput, rate {rate} @ {} MHz (fixed 30 iterations: \
         {fixed:.1} Mbit/s)\n",
        model.clock_mhz
    );
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>8}",
        "Eb/N0[dB]", "iters/frame", "T_eff [Mbit/s]", "gain vs fixed", "FER"
    );
    for ebn0 in [1.2f64, 1.6, 2.0, 2.5, 3.0, 4.0] {
        let sys = system(rate, FrameSize::Short, DecoderKind::Zigzag, 30);
        let pt = ber_point(&sys, ebn0, 40, 0);
        let cycles = model.cycles_at_iterations(&hw_params, pt.avg_iterations);
        let t_eff = hw_params.k as f64 / cycles * model.clock_mhz;
        println!(
            "{:>9.2} {:>12.1} {:>14.1} {:>13.2}x {:>8.2}",
            ebn0,
            pt.avg_iterations,
            t_eff,
            t_eff / fixed,
            pt.fer
        );
    }
    println!(
        "\nWith overlapped frame I/O (double-buffered channel RAM) the fixed-iteration \
         figure itself rises to {:.1} Mbit/s.",
        model.throughput_overlapped_mbps(&hw_params)
    );
    Ok(())
}
