//! Regenerates the **Figure 2 / Section 2.2** result: the optimized zigzag
//! parity update reaches the same BER as the conventional two-phase
//! schedule with ~10 fewer iterations ("30 iterations instead of 40").
//!
//! Sweeps the iteration cap for both schedules at a fixed near-threshold
//! Eb/N0 and reports BER and the iteration cap at which each schedule
//! reaches the clean-frame regime.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin fig2_schedules [--normal]`

use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::DecoderKind;
use dvbs2_bench::{ber_point, system};

fn main() {
    let normal = std::env::args().any(|a| a == "--normal");
    let frame = if normal { FrameSize::Normal } else { FrameSize::Short };
    let (ebn0, frames) = if normal { (1.0, 12) } else { (1.0, 40) };
    let caps: &[usize] = &[5, 10, 15, 20, 25, 30, 40, 50];

    println!("Figure 2: conventional (flooding) vs optimized (zigzag) schedule");
    println!("Rate 1/2 {frame} frames at Eb/N0 = {ebn0} dB, {frames} frames per point\n");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "iters", "flooding BER", "zigzag BER", "flood iters", "zig iters"
    );

    let mut crossover: Option<(usize, usize)> = None;
    let mut flood_clean = None;
    let mut zig_clean = None;
    for &cap in caps {
        let flood =
            ber_point(&system(CodeRate::R1_2, frame, DecoderKind::Flooding, cap), ebn0, frames, 0);
        let zig =
            ber_point(&system(CodeRate::R1_2, frame, DecoderKind::Zigzag, cap), ebn0, frames, 0);
        println!(
            "{:>6} {:>14} {:>14} {:>12.1} {:>12.1}",
            cap,
            dvbs2_bench::sci(flood.ber),
            dvbs2_bench::sci(zig.ber),
            flood.avg_iterations,
            zig.avg_iterations
        );
        if flood_clean.is_none() && flood.ber == 0.0 {
            flood_clean = Some(cap);
        }
        if zig_clean.is_none() && zig.ber == 0.0 {
            zig_clean = Some(cap);
        }
        if let (Some(z), Some(f)) = (zig_clean, flood_clean) {
            crossover.get_or_insert((z, f));
        }
    }

    match (zig_clean, flood_clean) {
        (Some(z), Some(f)) => {
            println!(
                "\nClean-frame regime reached at {z} iterations (zigzag) vs {f} (flooding): \
                 {} iterations saved.",
                f.saturating_sub(z)
            );
            println!("Paper claim: 30 iterations with the optimized schedule match 40 without.");
        }
        _ => {
            println!("\nIncrease frames/SNR to reach the clean regime; partial data printed above.")
        }
    }
    println!(
        "\nMemory payoff (Section 2.2): only backward messages stored — E_PN/2 ≈ N-K values \
         instead of E_PN."
    );
}
