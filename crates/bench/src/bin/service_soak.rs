//! Service-tier soak: an open-loop many-client load generator driving the
//! sharded [`ServiceTier`] with multiple tenants, streams and MODCODs,
//! through four phases:
//!
//! 1. **Parity** — the same seeded mixed-MODCOD stream decoded under 1 and
//!    2 shards plus a single-threaded reference; decoded bits must be
//!    identical everywhere, every stream delivered in order. End-to-end
//!    latency percentiles (exact nearest-rank over the raw samples) and
//!    per-tenant throughput are measured here.
//! 2. **Reconfig-under-load** — a hot MODCOD-table swap while first-half
//!    frames are still in flight; every frame delivers in per-stream order
//!    under the epoch it was admitted to, bit-identical to the reference.
//! 3. **Fault-migration** — a permanently corrupted worker on one shard;
//!    the quarantine detector plus the health monitor must migrate its
//!    streams without dropping or reordering a frame.
//! 4. **Overload** (skipped by `--quick`) — offered load far above
//!    capacity with tiny queues and tight tenant budgets; the service must
//!    refuse explicitly (shed/reject), never drop an admitted frame.
//!
//! Results land in `BENCH_service.json` at the repository root. Any
//! violated contract prints and exits non-zero (the `service-soak` CI job
//! runs `--quick`).

use dvbs2::channel::{mix_seed, Modulation, StreamKey};
use dvbs2::decoder::{detected_cpu_features, SimdTier};
use dvbs2::ldpc::{BitVec, CodeRate, FrameSize};
use dvbs2::{Modcod, ModcodTable};
use dvbs2_pipeline::{AdmissionPolicy, PipelineConfig, QuarantinePolicy, WorkerFaultInjection};
use dvbs2_service::{
    ServiceConfig, ServiceError, ServiceFrame, ServiceOutput, ServiceStats, ServiceTier,
    ShardFaultInjection, TenantPolicy,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::ops::Range;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: service_soak [--frames N] [--seed S] [--interval-us U] [--quick]\n\
         \n\
         --frames N       frames per stream per phase (default 36)\n\
         --seed S         stream seed, decimal or 0x-hex (default 0x5EC7)\n\
         --interval-us U  open-loop pacing between a client's frames (default 250)\n\
         --quick          CI budget: 12 frames per stream, overload phase skipped"
    );
    std::process::exit(2);
}

struct Options {
    frames: u64,
    seed: u64,
    interval: Duration,
    quick: bool,
}

fn parse_u64(text: &str) -> Option<u64> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

fn parse_args() -> Options {
    let mut options =
        Options { frames: 36, seed: 0x5EC7, interval: Duration::from_micros(250), quick: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--frames" => match args.next().as_deref().and_then(parse_u64) {
                Some(n) if n > 0 => options.frames = n,
                _ => usage(),
            },
            "--seed" => match args.next().as_deref().and_then(parse_u64) {
                Some(s) => options.seed = s,
                None => usage(),
            },
            "--interval-us" => match args.next().as_deref().and_then(parse_u64) {
                Some(u) => options.interval = Duration::from_micros(u),
                None => usage(),
            },
            "--quick" => {
                options.frames = 12;
                options.quick = true;
            }
            _ => usage(),
        }
    }
    options
}

/// The mixed-MODCOD dispatch table the soak serves: BPSK plus both APSK
/// constellations, all short FECFRAMEs so lengths stay uniform.
fn soak_table() -> ModcodTable {
    ModcodTable::build(&[
        Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
        Modcod::new(Modulation::Apsk16, CodeRate::R2_3, FrameSize::Short),
        Modcod::new(Modulation::Apsk32, CodeRate::R3_4, FrameSize::Short),
    ])
    .unwrap()
}

/// A comfortably-above-waterfall operating point per MODCOD, so most
/// frames converge while the decoder still does real iteration work.
fn operating_ebn0_db(modcod: &Modcod) -> f64 {
    match modcod.modulation {
        Modulation::Apsk16 => 9.0,
        Modulation::Apsk32 => 12.0,
        _ => match modcod.rate {
            CodeRate::R1_2 => 2.0,
            CodeRate::R3_4 => 3.4,
            _ => 2.6,
        },
    }
}

/// Deterministic noisy frame `seq` of `key` on `modcod`: identical bits no
/// matter which client thread generates it or which shard decodes it.
fn noisy_frame(
    table: &ModcodTable,
    key: StreamKey,
    seq: u64,
    modcod: usize,
    salt: u64,
) -> ServiceFrame {
    let entry = table.entry(modcod);
    let stream_seed = mix_seed(u64::from(key.tenant) << 32 | u64::from(key.stream), salt);
    let mut rng = SmallRng::seed_from_u64(mix_seed(stream_seed, seq));
    let ebn0 = operating_ebn0_db(&entry.modcod);
    ServiceFrame { key, modcod, llrs: entry.system().transmit_frame(&mut rng, ebn0).llrs }
}

/// What one open-loop client observed at the ingress.
#[derive(Default)]
struct ClientCounts {
    /// Frames admitted per stream (the delivery contract to verify).
    admitted: HashMap<StreamKey, u64>,
    shed: u64,
    rejected_backpressure: u64,
    rejected_budget: u64,
}

impl ClientCounts {
    fn merge(&mut self, other: ClientCounts) {
        for (key, n) in other.admitted {
            *self.admitted.entry(key).or_insert(0) += n;
        }
        self.shed += other.shed;
        self.rejected_backpressure += other.rejected_backpressure;
        self.rejected_budget += other.rejected_budget;
    }

    fn total_admitted(&self) -> u64 {
        self.admitted.values().sum()
    }

    fn total_refused(&self) -> u64 {
        self.shed + self.rejected_backpressure + self.rejected_budget
    }
}

/// One client's open-loop submission pass over its streams: frame `seq` of
/// every stream, paced by `interval`. With `retry` the client behaves like
/// a lossless uplink (soft refusals retried until admitted); without it a
/// refused frame is dropped at the source and counted — true open loop.
fn open_loop_submit(
    tier: &ServiceTier,
    keys: &[StreamKey],
    seqs: Range<u64>,
    interval: Duration,
    retry: bool,
    build: &(dyn Fn(StreamKey, u64) -> ServiceFrame + Sync),
) -> ClientCounts {
    let mut counts = ClientCounts::default();
    for seq in seqs {
        for &key in keys {
            let mut frame = build(key, seq);
            loop {
                match tier.submit(frame) {
                    Ok(_) => {
                        *counts.admitted.entry(key).or_insert(0) += 1;
                        break;
                    }
                    Err(err) if retry => match err {
                        ServiceError::Backpressure(back)
                        | ServiceError::OverBudget(back)
                        | ServiceError::Shed(back) => {
                            frame = back;
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        other => panic!("unexpected submit error: {other:?}"),
                    },
                    Err(ServiceError::Backpressure(_)) => {
                        counts.rejected_backpressure += 1;
                        break;
                    }
                    Err(ServiceError::OverBudget(_)) => {
                        counts.rejected_budget += 1;
                        break;
                    }
                    Err(ServiceError::Shed(_)) => {
                        counts.shed += 1;
                        break;
                    }
                    Err(other) => panic!("unexpected submit error: {other:?}"),
                }
            }
            if !interval.is_zero() {
                std::thread::sleep(interval);
            }
        }
    }
    counts
}

/// Runs one concurrent client per entry (a tenant's stream set), merging
/// their admission counts.
fn run_clients(
    tier: &ServiceTier,
    clients: &[(Vec<StreamKey>, Range<u64>)],
    interval: Duration,
    retry: bool,
    build: &(dyn Fn(StreamKey, u64) -> ServiceFrame + Sync),
) -> ClientCounts {
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .map(|(keys, seqs)| {
                let seqs = seqs.clone();
                scope.spawn(move || open_loop_submit(tier, keys, seqs, interval, retry, build))
            })
            .collect();
        let mut merged = ClientCounts::default();
        for handle in handles {
            merged.merge(handle.join().expect("client thread"));
        }
        merged
    })
}

/// Drains every admitted frame out of the tier (admission budgets only
/// free on consumption, so the expected count is exact).
fn drain_outputs(
    tier: &ServiceTier,
    expected: u64,
    label: &str,
    violations: &mut Vec<String>,
) -> Vec<ServiceOutput> {
    let mut outputs = Vec::with_capacity(expected as usize);
    let deadline = Instant::now() + Duration::from_secs(120);
    while (outputs.len() as u64) < expected {
        match tier.try_next_output() {
            Some(out) => outputs.push(out),
            None => {
                if Instant::now() > deadline {
                    violations.push(format!(
                        "[{label}] drained only {} of {expected} outputs before timeout",
                        outputs.len()
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    outputs
}

/// The zero-drop / zero-reorder contract: restricted to each stream the
/// delivery order must be exactly `0, 1, 2, ...` up to its admitted count.
fn verify_ordering(
    label: &str,
    outputs: &[ServiceOutput],
    admitted: &HashMap<StreamKey, u64>,
    violations: &mut Vec<String>,
) {
    let mut next: HashMap<StreamKey, u64> = HashMap::new();
    for out in outputs {
        let seq = next.entry(out.key).or_insert(0);
        if out.stream_seq != *seq {
            violations.push(format!(
                "[{label}] stream {:?} delivered seq {} while expecting {} (drop or reorder)",
                out.key, out.stream_seq, seq
            ));
            return;
        }
        *seq += 1;
    }
    for (key, expected) in admitted {
        let got = next.get(key).copied().unwrap_or(0);
        if got != *expected {
            violations.push(format!(
                "[{label}] stream {key:?} delivered {got} of {expected} admitted frames"
            ));
        }
    }
    for key in next.keys() {
        if !admitted.contains_key(key) {
            violations.push(format!("[{label}] stream {key:?} delivered without any admission"));
        }
    }
}

/// Exact nearest-rank quantile over raw samples (not the histogram
/// approximation the live counters use).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct LatencySummary {
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
    mean: f64,
}

fn summarize_latency(samples: impl Iterator<Item = u64>) -> LatencySummary {
    let mut sorted: Vec<u64> = samples.collect();
    sorted.sort_unstable();
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().map(|&ns| ns as f64).sum::<f64>() / sorted.len() as f64
    };
    LatencySummary {
        p50: exact_quantile(&sorted, 0.50),
        p99: exact_quantile(&sorted, 0.99),
        p999: exact_quantile(&sorted, 0.999),
        max: sorted.last().copied().unwrap_or(0),
        mean,
    }
}

struct TenantRow {
    tenant: u32,
    delivered: u64,
    info_mbps: f64,
    latency: LatencySummary,
    shed: u64,
    rejected: u64,
}

struct PhaseRow {
    name: String,
    shards: usize,
    seconds: f64,
    counts: ClientCounts,
    outputs_latency: LatencySummary,
    per_tenant: Vec<TenantRow>,
    stats: ServiceStats,
}

fn build_row(
    name: &str,
    shards: usize,
    seconds: f64,
    counts: ClientCounts,
    outputs: &[ServiceOutput],
    stats: ServiceStats,
) -> PhaseRow {
    let mut per_tenant = Vec::new();
    for tenant in &stats.tenants {
        let mine: Vec<&ServiceOutput> =
            outputs.iter().filter(|o| o.key.tenant == tenant.tenant).collect();
        let info_bits: f64 = mine.iter().map(|o| o.decoded.info_len as f64).sum();
        per_tenant.push(TenantRow {
            tenant: tenant.tenant,
            delivered: tenant.delivered,
            info_mbps: info_bits / 1e6 / seconds,
            latency: summarize_latency(mine.iter().map(|o| o.latency_ns)),
            shed: tenant.shed,
            rejected: tenant.rejected,
        });
    }
    PhaseRow {
        name: name.to_string(),
        shards,
        seconds,
        counts,
        outputs_latency: summarize_latency(outputs.iter().map(|o| o.latency_ns)),
        per_tenant,
        stats,
    }
}

/// Accounting invariants every phase must satisfy on top of ordering.
fn check_stats(label: &str, row: &PhaseRow, violations: &mut Vec<String>) {
    let stats = &row.stats;
    let mut check = |ok: bool, what: String| {
        if !ok {
            violations.push(format!("[{label}] {what}"));
        }
    };
    check(
        stats.submitted == row.counts.total_admitted(),
        format!("submitted {} != admitted {}", stats.submitted, row.counts.total_admitted()),
    );
    check(
        stats.delivered == stats.submitted,
        format!("delivered {} of {} admitted frames", stats.delivered, stats.submitted),
    );
    check(stats.orphaned == 0, format!("{} orphaned routing tickets", stats.orphaned));
    // Clients only count sheds they drop (open loop); retried sheds are
    // invisible to them but still counted by the service.
    check(
        stats.shed_latency >= row.counts.shed,
        format!("shed accounting: stats {} < clients {}", stats.shed_latency, row.counts.shed),
    );
    for tenant in &stats.tenants {
        check(
            tenant.in_flight == 0,
            format!("tenant {} still holds {} budget units", tenant.tenant, tenant.in_flight),
        );
    }
}

fn main() {
    let options = parse_args();
    let table = soak_table();
    let mut violations: Vec<String> = Vec::new();
    let mut rows: Vec<PhaseRow> = Vec::new();

    // Two tenants on opposite SLA classes, four streams each, MODCOD
    // slot = stream % 3 so every constellation carries traffic.
    let tenant_keys =
        |tenant: u32| -> Vec<StreamKey> { (0..4).map(|s| StreamKey::new(tenant, s)).collect() };
    let slot_of = |key: StreamKey| -> usize { (key.stream % 3) as usize };
    let policies =
        || vec![TenantPolicy::throughput_bound(1, 4096), TenantPolicy::latency_bound(2, 4096)];
    let clients: Vec<(Vec<StreamKey>, Range<u64>)> =
        vec![(tenant_keys(1), 0..options.frames), (tenant_keys(2), 0..options.frames)];
    let all_keys: Vec<StreamKey> =
        clients.iter().flat_map(|(keys, _)| keys.iter().copied()).collect();
    let total_frames = all_keys.len() as u64 * options.frames;

    // ---- phase 1: parity across shard counts ----------------------------
    // The same seeded stream under 1 and 2 shards must be bit-identical to
    // a single-threaded reference (one reused decoder per slot).
    println!(
        "parity phase: {} streams x {} frames, slots {:?}",
        all_keys.len(),
        options.frames,
        (0..table.len())
            .map(|s| (table.entry(s).modcod.modulation, table.entry(s).modcod.rate))
            .collect::<Vec<_>>()
    );
    let parity_build = |key: StreamKey, seq: u64| -> ServiceFrame {
        noisy_frame(&table, key, seq, slot_of(key), options.seed)
    };
    let mut reference: HashMap<(StreamKey, u64), (BitVec, bool)> = HashMap::new();
    {
        let mut decoders: Vec<_> =
            (0..table.len()).map(|s| table.entry(s).make_decoder()).collect();
        for &key in &all_keys {
            for seq in 0..options.frames {
                let frame = parity_build(key, seq);
                let out = decoders[frame.modcod].decode(&frame.llrs);
                reference.insert((key, seq), (out.bits, out.converged));
            }
        }
    }
    let mut parity_bits: Vec<HashMap<(StreamKey, u64), BitVec>> = Vec::new();
    for shards in [1usize, 2] {
        let label = format!("parity-s{shards}");
        let tier = ServiceTier::start(
            table.clone(),
            ServiceConfig {
                shards,
                pipeline: PipelineConfig {
                    workers: 2,
                    ingress_capacity: 16,
                    egress_capacity: 16,
                    max_in_flight: 32,
                    admission: AdmissionPolicy::Off,
                    ..PipelineConfig::default()
                },
                tenants: policies(),
                ..ServiceConfig::default()
            },
        );
        let started = Instant::now();
        let counts = run_clients(&tier, &clients, options.interval, true, &parity_build);
        let outputs = drain_outputs(&tier, counts.total_admitted(), &label, &mut violations);
        let seconds = started.elapsed().as_secs_f64();
        verify_ordering(&label, &outputs, &counts.admitted, &mut violations);
        let mut mismatches = 0usize;
        let mut bits = HashMap::new();
        for out in &outputs {
            let (ref_bits, ref_converged) = &reference[&(out.key, out.stream_seq)];
            if &out.decoded.bits != ref_bits || out.decoded.converged != *ref_converged {
                mismatches += 1;
            }
            bits.insert((out.key, out.stream_seq), out.decoded.bits.clone());
        }
        if mismatches > 0 {
            violations.push(format!(
                "[{label}] {mismatches} of {total_frames} frames differ from the reference"
            ));
        }
        parity_bits.push(bits);
        let row = build_row(&label, shards, seconds, counts, &outputs, tier.finish());
        check_stats(&label, &row, &mut violations);
        println!(
            "{label}: {:.2}s, p50 {:.0}us p99 {:.0}us p999 {:.0}us",
            seconds,
            row.outputs_latency.p50 as f64 / 1e3,
            row.outputs_latency.p99 as f64 / 1e3,
            row.outputs_latency.p999 as f64 / 1e3,
        );
        rows.push(row);
    }
    if parity_bits[0] != parity_bits[1] {
        violations.push("[parity] decoded bits differ between 1 and 2 shards".to_string());
    }

    // ---- phase 2: hot MODCOD reconfiguration under load ------------------
    // Swap the table (slots remapped) while first-half frames are still in
    // flight in the old shards; everything delivers under its own epoch.
    let old_table = ModcodTable::build(&[
        Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
        Modcod::new(Modulation::Apsk16, CodeRate::R2_3, FrameSize::Short),
    ])
    .unwrap();
    let new_table = ModcodTable::build(&[
        Modcod::new(Modulation::Apsk16, CodeRate::R2_3, FrameSize::Short),
        Modcod::new(Modulation::Bpsk, CodeRate::R3_4, FrameSize::Short),
    ])
    .unwrap();
    let half = (options.frames / 2).max(1);
    let reconfig_salt = options.seed ^ 0x7AB1E;
    let old_build = |key: StreamKey, seq: u64| -> ServiceFrame {
        noisy_frame(&old_table, key, seq, (key.stream % 2) as usize, reconfig_salt)
    };
    let new_build = |key: StreamKey, seq: u64| -> ServiceFrame {
        noisy_frame(&new_table, key, seq, (key.stream % 2) as usize, reconfig_salt)
    };
    {
        let label = "reconfig";
        let tier = ServiceTier::start(
            old_table.clone(),
            ServiceConfig {
                shards: 2,
                pipeline: PipelineConfig {
                    workers: 2,
                    admission: AdmissionPolicy::Off,
                    ..PipelineConfig::default()
                },
                tenants: policies(),
                ..ServiceConfig::default()
            },
        );
        let first: Vec<(Vec<StreamKey>, Range<u64>)> =
            vec![(tenant_keys(1), 0..half), (tenant_keys(2), 0..half)];
        let second: Vec<(Vec<StreamKey>, Range<u64>)> =
            vec![(tenant_keys(1), half..options.frames), (tenant_keys(2), half..options.frames)];
        let started = Instant::now();
        let mut counts = run_clients(&tier, &first, options.interval, true, &old_build);
        let in_flight_at_swap: usize = tier.shards().iter().map(|s| s.in_flight).sum();
        let epoch = tier.reconfigure(new_table.clone());
        if epoch != 1 {
            violations.push(format!("[{label}] reconfigure returned epoch {epoch}, expected 1"));
        }
        counts.merge(run_clients(&tier, &second, options.interval, true, &new_build));
        let outputs = drain_outputs(&tier, counts.total_admitted(), label, &mut violations);
        let seconds = started.elapsed().as_secs_f64();
        verify_ordering(label, &outputs, &counts.admitted, &mut violations);
        let mut decoders_old: Vec<_> =
            (0..old_table.len()).map(|s| old_table.entry(s).make_decoder()).collect();
        let mut decoders_new: Vec<_> =
            (0..new_table.len()).map(|s| new_table.entry(s).make_decoder()).collect();
        let mut epoch_errors = 0usize;
        let mut mismatches = 0usize;
        for out in &outputs {
            let expected_epoch = u64::from(out.stream_seq >= half);
            if out.epoch != expected_epoch {
                epoch_errors += 1;
            }
            let frame = if out.stream_seq < half {
                old_build(out.key, out.stream_seq)
            } else {
                new_build(out.key, out.stream_seq)
            };
            let reference = if out.stream_seq < half {
                decoders_old[frame.modcod].decode(&frame.llrs)
            } else {
                decoders_new[frame.modcod].decode(&frame.llrs)
            };
            if out.decoded.bits != reference.bits {
                mismatches += 1;
            }
        }
        if epoch_errors > 0 {
            violations
                .push(format!("[{label}] {epoch_errors} frames decoded under the wrong epoch"));
        }
        if mismatches > 0 {
            violations.push(format!("[{label}] {mismatches} frames differ from the reference"));
        }
        for status in tier.shards() {
            if status.epoch != 1 || status.draining {
                violations.push(format!(
                    "[{label}] stale shard after the roll: uid {} epoch {} draining {}",
                    status.uid, status.epoch, status.draining
                ));
            }
        }
        let row = build_row(label, 2, seconds, counts, &outputs, tier.finish());
        if row.stats.reconfigs != 1 {
            violations.push(format!("[{label}] reconfigs counter is {}", row.stats.reconfigs));
        }
        if row.stats.migrations < all_keys.len() as u64 {
            violations.push(format!(
                "[{label}] only {} migrations; every stream must re-route once",
                row.stats.migrations
            ));
        }
        check_stats(label, &row, &mut violations);
        println!(
            "{label}: {:.2}s, {} frames in flight at the swap, {} migrations",
            seconds, in_flight_at_swap, row.stats.migrations
        );
        rows.push(row);
    }

    // ---- phase 3: fault-driven migration ---------------------------------
    // Shard 0's worker 0 corrupts every frame; the syndrome-anomaly
    // quarantine flags it, the monitor migrates its streams, and nothing
    // drops or reorders. Strong all-zero frames keep the fault signature
    // deterministic.
    {
        let label = "fault-migration";
        let fault_frames = options.frames.max(40);
        let n = table.entry(0).frame_len();
        let strong_build =
            |key: StreamKey, _seq: u64| ServiceFrame { key, modcod: 0, llrs: vec![6.0; n] };
        let tier = ServiceTier::start(
            table.clone(),
            ServiceConfig {
                shards: 2,
                pipeline: PipelineConfig {
                    workers: 2,
                    quarantine: QuarantinePolicy {
                        enabled: true,
                        alpha: 0.5,
                        nonconv_threshold: 0.5,
                        syndrome_threshold: 0.01,
                        min_decodes: 3,
                        probe_passes: 2,
                        probe_interval_ms: 1,
                    },
                    ..PipelineConfig::default()
                },
                tenants: policies(),
                health_poll_ms: 2,
                fault_injection: Some(ShardFaultInjection {
                    shard: 0,
                    injection: WorkerFaultInjection::permanent(0),
                }),
            },
        );
        let fault_clients: Vec<(Vec<StreamKey>, Range<u64>)> =
            vec![(tenant_keys(1), 0..fault_frames), (tenant_keys(2), 0..fault_frames)];
        let started = Instant::now();
        let counts =
            run_clients(&tier, &fault_clients, Duration::from_millis(1), true, &strong_build);
        let outputs = drain_outputs(&tier, counts.total_admitted(), label, &mut violations);
        let seconds = started.elapsed().as_secs_f64();
        verify_ordering(label, &outputs, &counts.admitted, &mut violations);
        let corrupted = outputs.iter().filter(|o| !o.decoded.converged).count();
        let row = build_row(label, 2, seconds, counts, &outputs, tier.finish());
        if row.stats.fault_migrations == 0 {
            violations.push(format!(
                "[{label}] the monitor never migrated streams off the degraded shard"
            ));
        }
        check_stats(label, &row, &mut violations);
        println!(
            "{label}: {:.2}s, {} fault migrations, {} of {} frames corrupted before containment",
            seconds,
            row.stats.fault_migrations,
            corrupted,
            outputs.len()
        );
        rows.push(row);
    }

    // ---- phase 4: overload (full runs only) ------------------------------
    // Offered load far above capacity against tiny queues and tight tenant
    // budgets. Pure open loop: a refused frame is dropped at the source.
    // The contract is explicit refusal — every *admitted* frame still
    // delivers in order.
    if !options.quick {
        let label = "overload";
        let n = table.entry(0).frame_len();
        let strong_build =
            |key: StreamKey, _seq: u64| ServiceFrame { key, modcod: 0, llrs: vec![6.0; n] };
        let tier = ServiceTier::start(
            table.clone(),
            ServiceConfig {
                shards: 2,
                pipeline: PipelineConfig {
                    workers: 1,
                    ingress_capacity: 4,
                    egress_capacity: 4,
                    max_in_flight: 8,
                    admission: AdmissionPolicy::Adaptive { min_iterations: 4 },
                    ..PipelineConfig::default()
                },
                tenants: vec![
                    TenantPolicy::throughput_bound(1, 16),
                    TenantPolicy::latency_bound(2, 16),
                ],
                ..ServiceConfig::default()
            },
        );
        let overload_frames = options.frames * 4;
        let overload_clients: Vec<(Vec<StreamKey>, Range<u64>)> =
            vec![(tenant_keys(1), 0..overload_frames), (tenant_keys(2), 0..overload_frames)];
        let started = Instant::now();
        // A live consumer recycles tenant budget units while the clients
        // hammer the ingress, so admission keeps churning instead of
        // saturating at the budget once.
        let stop = std::sync::atomic::AtomicBool::new(false);
        let (counts, mut outputs) = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                loop {
                    match tier.try_next_output() {
                        Some(out) => got.push(out),
                        None => {
                            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                }
                got
            });
            // Paced, not zero-interval: the offered rate stays far above
            // the 1-worker shards' capacity, but the run lasts long
            // enough for budget units to recycle through the consumer —
            // admission keeps churning instead of one burst of refusals.
            let counts =
                run_clients(&tier, &overload_clients, options.interval, false, &strong_build);
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (counts, consumer.join().expect("overload consumer"))
        });
        let remaining = counts.total_admitted().saturating_sub(outputs.len() as u64);
        outputs.extend(drain_outputs(&tier, remaining, label, &mut violations));
        let seconds = started.elapsed().as_secs_f64();
        verify_ordering(label, &outputs, &counts.admitted, &mut violations);
        if counts.total_refused() == 0 {
            violations.push(format!("[{label}] load far above capacity yet nothing was refused"));
        }
        let row = build_row(label, 2, seconds, counts, &outputs, tier.finish());
        check_stats(label, &row, &mut violations);
        println!(
            "{label}: {:.2}s, admitted {} shed {} rejected {} (bp) + {} (budget)",
            seconds,
            row.counts.total_admitted(),
            row.counts.shed,
            row.counts.rejected_backpressure,
            row.counts.rejected_budget,
        );
        rows.push(row);
    }

    // ---- record ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"service_soak\",\n");
    json.push_str(&format!("  \"seed\": {},\n", options.seed));
    json.push_str(&format!("  \"frames_per_stream\": {},\n", options.frames));
    json.push_str(&format!("  \"interval_us\": {},\n", options.interval.as_micros()));
    json.push_str(&format!("  \"quick\": {},\n", options.quick));
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let tier = SimdTier::resolve(None);
    let features = detected_cpu_features();
    json.push_str(&format!(
        "  \"cpu\": {{\"cores\": {cores}, \"single_vcpu\": {}, \"dispatch_tier\": \"{}\", \
         \"features\": [{}]}},\n",
        cores == 1,
        tier.name(),
        features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(
        "  \"slots\": [\"BPSK 1/2 short\", \"16APSK 2/3 short\", \"32APSK 3/4 short\"],\n",
    );
    json.push_str(
        "  \"tenants\": [{\"tenant\": 1, \"sla\": \"throughput_bound\", \"streams\": 4}, \
         {\"tenant\": 2, \"sla\": \"latency_bound\", \"streams\": 4}],\n",
    );
    json.push_str(
        "  \"units\": \"end-to-end latency (submit to in-order delivery) in \
         microseconds, exact nearest-rank percentiles over raw samples\",\n",
    );
    json.push_str("  \"phases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let lat = |l: &LatencySummary| {
            format!(
                "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
                 \"max_us\": {:.1}, \"mean_us\": {:.1}}}",
                l.p50 as f64 / 1e3,
                l.p99 as f64 / 1e3,
                l.p999 as f64 / 1e3,
                l.max as f64 / 1e3,
                l.mean / 1e3,
            )
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, \"seconds\": {:.3}, \
             \"admitted\": {}, \"delivered\": {}, \"shed\": {}, \
             \"rejected_backpressure\": {}, \"rejected_budget\": {}, \
             \"migrations\": {}, \"fault_migrations\": {}, \"reconfigs\": {}, \
             \"epoch\": {}, \"latency\": {},\n",
            row.name,
            row.shards,
            row.seconds,
            row.counts.total_admitted(),
            row.stats.delivered,
            row.counts.shed,
            row.counts.rejected_backpressure,
            row.counts.rejected_budget,
            row.stats.migrations,
            row.stats.fault_migrations,
            row.stats.reconfigs,
            row.stats.epoch,
            lat(&row.outputs_latency),
        ));
        json.push_str("     \"per_tenant\": [\n");
        for (j, tenant) in row.per_tenant.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"tenant\": {}, \"delivered\": {}, \"info_mbps\": {:.3}, \
                 \"shed\": {}, \"rejected\": {}, \"latency\": {}}}{}\n",
                tenant.tenant,
                tenant.delivered,
                tenant.info_mbps,
                tenant.shed,
                tenant.rejected,
                lat(&tenant.latency),
                if j + 1 < row.per_tenant.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("     ]}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(out_path, &json).expect("writing BENCH_service.json");
    println!("wrote {out_path}");

    if !violations.is_empty() {
        eprintln!("\n{} contract violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("service soak clean");
}
