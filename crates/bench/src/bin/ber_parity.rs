//! Verifies the f32 fast path's BER parity against the f64 reference:
//! identical 500-frame seeded runs at Eb/N0 = 1.0 dB, reporting the
//! relative BER difference (acceptance: within 5%).
//!
//! Run: `cargo run --release -p dvbs2-bench --bin ber_parity`

use dvbs2::channel::StopRule;
use dvbs2::decoder::{DecoderConfig, Precision};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};

fn run(precision: Precision, ebn0_db: f64, frames: usize) -> (f64, usize, usize) {
    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        decoder: DecoderKind::Zigzag,
        decoder_config: DecoderConfig::default().with_precision(precision),
        ..SystemConfig::default()
    })
    .expect("valid configuration");
    let est = system.simulate_ber(
        ebn0_db,
        StopRule { max_frames: frames, target_frame_errors: 0 },
        dvbs2::channel::default_threads(),
    );
    (est.ber(), est.bit_errors, est.frame_errors)
}

fn main() {
    let ebn0_db = 1.0;
    let frames = 500;
    println!(
        "zigzag sum-product, N = 16200 rate 1/2, Eb/N0 = {ebn0_db} dB, {frames} seeded frames\n"
    );

    let (ber64, bits64, fe64) = run(Precision::F64, ebn0_db, frames);
    let (ber32, bits32, fe32) = run(Precision::F32, ebn0_db, frames);

    println!("f64: BER {ber64:.4e}  ({bits64} bit errors, {fe64} frame errors)");
    println!("f32: BER {ber32:.4e}  ({bits32} bit errors, {fe32} frame errors)");

    let rel = if ber64 > 0.0 { (ber32 - ber64).abs() / ber64 } else { 0.0 };
    println!("\nrelative BER difference: {:.2}%", rel * 100.0);
    let ok = rel < 0.05;
    println!("acceptance (< 5%): {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
}
