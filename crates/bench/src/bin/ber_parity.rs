//! BER parity gates for the fast-path approximations.
//!
//! Two checks, both on identical seeded frame sequences:
//!
//! 1. f32 vs f64 zigzag sum-product at Eb/N0 = 1.0 dB — the f32 fast path
//!    must stay within 5% relative BER of the double-precision reference.
//! 2. Table-driven boxplus vs exact sum-product (both f32, flooding) —
//!    the paired BER gap is converted to an Eb/N0 penalty using the local
//!    waterfall slope of the exact curve (measured between 1.0 and 1.2 dB)
//!    and must stay below 0.05 dB.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin ber_parity`

use dvbs2::channel::StopRule;
use dvbs2::decoder::{CheckRule, DecoderConfig, Precision};
use dvbs2::ldpc::{CodeRate, FrameSize};
use dvbs2::{DecoderKind, Dvbs2System, SystemConfig};

fn run_with(
    decoder: DecoderKind,
    rule: CheckRule,
    precision: Precision,
    ebn0_db: f64,
    frames: usize,
) -> (f64, usize, usize) {
    let system = Dvbs2System::new(SystemConfig {
        rate: CodeRate::R1_2,
        frame: FrameSize::Short,
        decoder,
        decoder_config: DecoderConfig::default().with_rule(rule).with_precision(precision),
        ..SystemConfig::default()
    })
    .expect("valid configuration");
    let est = system.simulate_ber(
        ebn0_db,
        StopRule { max_frames: frames, target_frame_errors: 0 },
        dvbs2::channel::default_threads(),
    );
    (est.ber(), est.bit_errors, est.frame_errors)
}

fn run(precision: Precision, ebn0_db: f64, frames: usize) -> (f64, usize, usize) {
    run_with(DecoderKind::Zigzag, CheckRule::SumProduct, precision, ebn0_db, frames)
}

/// Gate 1: f32 zigzag sum-product within 5% relative BER of f64.
fn precision_parity(ebn0_db: f64, frames: usize) -> bool {
    println!(
        "zigzag sum-product, N = 16200 rate 1/2, Eb/N0 = {ebn0_db} dB, {frames} seeded frames\n"
    );

    let (ber64, bits64, fe64) = run(Precision::F64, ebn0_db, frames);
    let (ber32, bits32, fe32) = run(Precision::F32, ebn0_db, frames);

    println!("f64: BER {ber64:.4e}  ({bits64} bit errors, {fe64} frame errors)");
    println!("f32: BER {ber32:.4e}  ({bits32} bit errors, {fe32} frame errors)");

    let rel = if ber64 > 0.0 { (ber32 - ber64).abs() / ber64 } else { 0.0 };
    println!("\nrelative BER difference: {:.2}%", rel * 100.0);
    let ok = rel < 0.05;
    println!("acceptance (< 5%): {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Gate 2: table-driven boxplus costs less than 0.05 dB versus exact
/// sum-product. The paired BER gap at 1.0 dB is divided by the exact
/// curve's local slope (BER change per dB between 1.0 and 1.2 dB) to
/// estimate the equivalent Eb/N0 penalty.
fn table_loss(frames: usize) -> bool {
    let (lo_db, hi_db) = (1.0, 1.2);
    println!(
        "\nflooding f32, N = 16200 rate 1/2, table-driven vs exact boxplus, \
         {frames} seeded frames\n"
    );

    let (exact_lo, bits_e, fe_e) =
        run_with(DecoderKind::Flooding, CheckRule::SumProduct, Precision::F32, lo_db, frames);
    let (table_lo, bits_t, fe_t) =
        run_with(DecoderKind::Flooding, CheckRule::TableSumProduct, Precision::F32, lo_db, frames);
    let (exact_hi, _, _) =
        run_with(DecoderKind::Flooding, CheckRule::SumProduct, Precision::F32, hi_db, frames);

    println!("exact {lo_db} dB: BER {exact_lo:.4e}  ({bits_e} bit errors, {fe_e} frame errors)");
    println!("table {lo_db} dB: BER {table_lo:.4e}  ({bits_t} bit errors, {fe_t} frame errors)");
    println!("exact {hi_db} dB: BER {exact_hi:.4e}");

    let slope_per_db = (exact_lo - exact_hi) / (hi_db - lo_db);
    if slope_per_db <= 0.0 {
        // Waterfall slope unresolvable at this sample size; fall back to a
        // direct relative-BER check with the same tolerance as gate 1.
        let rel = if exact_lo > 0.0 { (table_lo - exact_lo).abs() / exact_lo } else { 0.0 };
        println!("\nslope unresolved; relative BER difference: {:.2}%", rel * 100.0);
        let ok = rel < 0.05;
        println!("acceptance (< 5%): {}", if ok { "PASS" } else { "FAIL" });
        return ok;
    }

    let loss_db = ((table_lo - exact_lo) / slope_per_db).max(0.0);
    println!("\nestimated table-boxplus Eb/N0 loss: {loss_db:.4} dB");
    let ok = loss_db < 0.05;
    println!("acceptance (< 0.05 dB): {}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() {
    let frames = 500;
    let ok1 = precision_parity(1.0, frames);
    let ok2 = table_loss(frames);
    if !(ok1 && ok2) {
        std::process::exit(1);
    }
}
