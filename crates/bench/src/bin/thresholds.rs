//! Analytic backing for the paper's "transmission close to the theoretical
//! limit" framing: belief-propagation thresholds of every DVB-S2 degree
//! distribution versus the binary-input AWGN Shannon limit — by cheap
//! Gaussian approximation and, where requested, by exact discretized
//! density evolution.
//!
//! Run: `cargo run --release -p dvbs2-bench --bin thresholds [--exact-all]`
//! (default runs exact DE for rates 1/2, 3/5 and 3/4 only; ~20 s each).

use dvbs2::channel::shannon_limit_biawgn_db;
use dvbs2::decoder::{ga_threshold_ebn0_db, DegreeDistribution, DensityEvolution};
use dvbs2::ldpc::{CodeParams, CodeRate, FrameSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exact_all = std::env::args().any(|a| a == "--exact-all");
    let exact_default = [CodeRate::R1_2, CodeRate::R3_5, CodeRate::R3_4];
    let engine = DensityEvolution::default_grid();

    println!("BP thresholds vs Shannon, normal frames");
    println!("(GA = Gaussian approximation; DE = exact discretized density evolution)\n");
    println!(
        "{:>6} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "rate", "R", "Shannon [dB]", "GA [dB]", "DE [dB]", "DE gap"
    );
    for rate in CodeRate::ALL {
        let p = CodeParams::new(rate, FrameSize::Normal)?;
        let r = p.k as f64 / p.n as f64;
        let dist = DegreeDistribution::for_code(&p);
        let shannon = shannon_limit_biawgn_db(r);
        let ga = ga_threshold_ebn0_db(&dist, r);
        let exact = if exact_all || exact_default.contains(&rate) {
            let sigma = engine.threshold_sigma(&dist, 500, 1e-6);
            Some(10.0 * (1.0 / (2.0 * r * sigma * sigma)).log10())
        } else {
            None
        };
        match exact {
            Some(de) => println!(
                "{:>6} {:>8.3} {:>14.3} {:>10.3} {:>10.3} {:>10.3}",
                rate.to_string(),
                r,
                shannon,
                ga,
                de,
                de - shannon
            ),
            None => println!(
                "{:>6} {:>8.3} {:>14.3} {:>10.3} {:>10} {:>10}",
                rate.to_string(),
                r,
                shannon,
                ga,
                "-",
                "-"
            ),
        }
    }
    let regular = DegreeDistribution::regular(3, 6);
    let sigma_reg = engine.threshold_sigma(&regular, 500, 1e-6);
    println!(
        "\nReference: (3,6)-regular exact-DE threshold σ* = {sigma_reg:.4} \
         (literature: 0.8809)."
    );
    println!(
        "The exact-DE gap of ~0.3 dB for R = 1/2, plus the finite-length loss at \
         N = 64800,\nreproduces the paper's \"≈ 0.7 dB to Shannon\". GA is biased high for \
         these degree-2-heavy\nIRA profiles (worst at low rates) — which is why the exact \
         engine exists."
    );
    Ok(())
}
