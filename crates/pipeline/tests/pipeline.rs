//! Integration contracts of the streaming decode pipeline: bit parity with
//! single-threaded decoding, in-order egress, explicit backpressure,
//! admission-control shedding and counter consistency.

use dvbs2::channel::{mix_seed, FrameTag, LlrSource, Modulation};
use dvbs2::decoder::DecoderConfig;
use dvbs2::ldpc::{BitVec, CodeRate, FrameSize};
use dvbs2::{DecoderKind, DecoderProfile, Modcod, ModcodTable};
use dvbs2_pipeline::{
    AdmissionPolicy, DecodePipeline, PipelineConfig, QuarantinePolicy, SoftFrame, SubmitError,
    WorkerFaultInjection,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic index-addressed source: frame `i` is a seeded noisy
/// transmission under slot `i % table.len()`, identical no matter when or
/// on which thread it is generated.
struct NoisySource {
    table: ModcodTable,
    seed: u64,
    ebn0_offset_db: f64,
}

impl NoisySource {
    fn anchor_db(rate: CodeRate) -> f64 {
        match rate {
            CodeRate::R1_2 => 1.4,
            CodeRate::R3_4 => 2.8,
            CodeRate::R8_9 => 4.2,
            _ => 2.0,
        }
    }
}

impl LlrSource for NoisySource {
    fn tag(&self, index: u64) -> FrameTag {
        FrameTag { stream_index: index, modcod: (index % self.table.len() as u64) as usize }
    }

    fn fill(&mut self, index: u64, out: &mut Vec<f64>) {
        let tag = self.tag(index);
        let entry = self.table.entry(tag.modcod);
        let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed, index));
        let ebn0 = Self::anchor_db(entry.modcod.rate) + self.ebn0_offset_db;
        let frame = entry.system().transmit_frame(&mut rng, ebn0);
        out.clear();
        out.extend_from_slice(&frame.llrs);
    }
}

fn mixed_table(max_iterations: usize) -> ModcodTable {
    let profile = |kind| DecoderProfile {
        kind,
        config: DecoderConfig::default().with_max_iterations(max_iterations),
    };
    ModcodTable::with_profiles(&[
        (
            Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
            profile(DecoderKind::Zigzag),
        ),
        (
            Modcod::new(Modulation::Bpsk, CodeRate::R3_4, FrameSize::Short),
            profile(DecoderKind::Flooding),
        ),
        (
            Modcod::new(Modulation::Bpsk, CodeRate::R8_9, FrameSize::Short),
            profile(DecoderKind::Quantized(dvbs2::decoder::Quantizer::paper_6bit())),
        ),
    ])
    .unwrap()
}

fn soft_frame(source: &mut NoisySource, index: u64) -> SoftFrame {
    SoftFrame::from(source.frame(index))
}

/// Single-threaded reference: one decoder per slot (reused frame to frame,
/// exactly like a pipeline worker), frames decoded in stream order.
fn reference_decode(
    table: &ModcodTable,
    source: &mut NoisySource,
    frames: u64,
) -> Vec<(BitVec, usize, bool)> {
    let mut decoders: Vec<_> = (0..table.len()).map(|s| table.entry(s).make_decoder()).collect();
    (0..frames)
        .map(|i| {
            let frame = soft_frame(source, i);
            let out = decoders[frame.modcod].decode(&frame.llrs);
            (out.bits, out.iterations, out.converged)
        })
        .collect()
}

#[test]
fn multithreaded_decode_is_bit_identical_to_single_threaded() {
    const FRAMES: u64 = 48;
    let table = mixed_table(8);
    let mut source = NoisySource { table: table.clone(), seed: 0x50AC, ebn0_offset_db: 0.4 };
    let reference = reference_decode(&table, &mut source, FRAMES);

    let pipeline = DecodePipeline::start(
        table,
        PipelineConfig {
            workers: 4,
            ingress_capacity: 8,
            egress_capacity: 8,
            max_in_flight: 24,
            admission: AdmissionPolicy::Off,
            ..PipelineConfig::default()
        },
    );
    let outputs = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() as u64 == FRAMES {
                    break;
                }
            }
            outputs
        });
        for i in 0..FRAMES {
            let seq = pipeline.submit(soft_frame(&mut source, i)).unwrap();
            assert_eq!(seq, i, "blocking submits claim consecutive sequence numbers");
        }
        consumer.join().unwrap()
    });

    assert_eq!(outputs.len() as u64, FRAMES);
    let mut converged = 0;
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64, "egress must be in submission order");
        assert_eq!(out.stream_index, i as u64);
        let (ref_bits, ref_iterations, ref_converged) = &reference[i];
        assert_eq!(&out.bits, ref_bits, "frame {i}: bits differ from single-threaded");
        assert_eq!(out.iterations, *ref_iterations, "frame {i}");
        assert_eq!(out.converged, *ref_converged, "frame {i}");
        assert_eq!(out.bbframe().len(), out.info_len);
        converged += usize::from(out.converged);
    }
    assert!(converged > 0, "the operating point must decode some frames");

    let stats = pipeline.finish();
    assert_eq!(stats.offered, FRAMES);
    assert_eq!(stats.submitted, FRAMES);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.decoded, FRAMES);
    assert_eq!(stats.emitted, FRAMES);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.in_flight, 0, "everything consumed");
    assert_eq!(stats.histogram_total(), stats.decoded);
    assert_eq!(stats.offered, stats.submitted + stats.rejected);
    assert!(stats.ingress_watermark <= 8, "bounded ingress");
    assert!(stats.decode_ns > 0);
}

#[test]
fn batched_worker_path_is_bit_identical_to_per_frame_path() {
    // A single-slot table whose profile batches (flooding + min-sum): with
    // min_batch > 1 every worker grab forms a same-slot run of ≥ 2 frames
    // and decodes it through the multi-frame TiledBatchDecoder. The tiled
    // kernel is bit-identical per frame, so egress must match the
    // single-frame reference decoder exactly — bits, iterations and
    // convergence — proving consumers cannot tell which path ran.
    use dvbs2::decoder::{CheckRule, Precision};
    const FRAMES: u64 = 32;
    let profile = DecoderProfile {
        kind: DecoderKind::Flooding,
        config: DecoderConfig::default()
            .with_rule(CheckRule::NormalizedMinSum(0.8))
            .with_precision(Precision::F32)
            .with_max_iterations(12),
    };
    let table = ModcodTable::with_profiles(&[(
        Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
        profile,
    )])
    .unwrap();
    assert!(table.entry(0).make_batch_decoder(4).is_some(), "profile must be batchable");
    let mut source = NoisySource { table: table.clone(), seed: 0xBA7C, ebn0_offset_db: 0.2 };
    let reference = reference_decode(&table, &mut source, FRAMES);

    let pipeline = DecodePipeline::start(
        table,
        PipelineConfig {
            workers: 2,
            ingress_capacity: 16,
            egress_capacity: 16,
            max_in_flight: 48,
            admission: AdmissionPolicy::Off,
            min_batch: 4,
            max_batch: 8,
            ..PipelineConfig::default()
        },
    );
    let outputs = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() as u64 == FRAMES {
                    break;
                }
            }
            outputs
        });
        for i in 0..FRAMES {
            pipeline.submit(soft_frame(&mut source, i)).unwrap();
        }
        consumer.join().unwrap()
    });

    assert_eq!(outputs.len() as u64, FRAMES);
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64, "egress must stay in submission order");
        let (ref_bits, ref_iterations, ref_converged) = &reference[i];
        assert_eq!(&out.bits, ref_bits, "frame {i}: bits differ from single-frame decode");
        assert_eq!(out.iterations, *ref_iterations, "frame {i}");
        assert_eq!(out.converged, *ref_converged, "frame {i}");
    }
    let stats = pipeline.finish();
    assert_eq!(stats.decoded, FRAMES);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.histogram_total(), stats.decoded);
}

#[test]
fn try_submit_backpressure_is_explicit_and_lossless() {
    const FRAMES: u64 = 40;
    let table = mixed_table(8);
    let mut source = NoisySource { table: table.clone(), seed: 0xBACC, ebn0_offset_db: 0.0 };
    let pipeline = DecodePipeline::start(
        table,
        PipelineConfig {
            workers: 1,
            ingress_capacity: 2,
            egress_capacity: 2,
            max_in_flight: 5,
            admission: AdmissionPolicy::Off,
            ..PipelineConfig::default()
        },
    );

    let (outputs, rejections) = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() as u64 == FRAMES {
                    break;
                }
            }
            outputs
        });
        let mut rejections = 0u64;
        for i in 0..FRAMES {
            let mut frame = soft_frame(&mut source, i);
            loop {
                match pipeline.try_submit(frame) {
                    Ok(_) => break,
                    Err(SubmitError::Rejected(back)) => {
                        // The exact frame comes back; nothing is lost.
                        assert_eq!(back.stream_index, i);
                        rejections += 1;
                        frame = back;
                        std::thread::yield_now();
                    }
                    Err(other) => panic!("unexpected submit error: {other:?}"),
                }
            }
        }
        (consumer.join().unwrap(), rejections)
    });

    assert!(rejections > 0, "tiny queues must exercise backpressure");
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64, "order survives rejection/retry");
    }
    let stats = pipeline.finish();
    assert_eq!(stats.submitted, FRAMES);
    assert_eq!(stats.rejected, rejections);
    assert_eq!(stats.offered, stats.submitted + stats.rejected);
    assert_eq!(stats.decoded, FRAMES);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.histogram_total(), stats.decoded);
    assert!(stats.ingress_watermark <= 2);
}

#[test]
fn validation_failures_hand_the_frame_back() {
    let table = mixed_table(6);
    let n = table.entry(0).frame_len();
    let pipeline =
        DecodePipeline::start(table, PipelineConfig { workers: 1, ..PipelineConfig::default() });

    let bad_slot = SoftFrame { modcod: 9, stream_index: 0, llrs: vec![1.0; n] };
    match pipeline.try_submit(bad_slot) {
        Err(SubmitError::UnknownModcod(frame)) => assert_eq!(frame.modcod, 9),
        other => panic!("expected UnknownModcod, got {other:?}"),
    }

    let bad_len = SoftFrame { modcod: 0, stream_index: 1, llrs: vec![1.0; 7] };
    match pipeline.try_submit(bad_len) {
        Err(SubmitError::WrongLength { frame, expected }) => {
            assert_eq!(expected, n);
            assert_eq!(frame.llrs.len(), 7);
        }
        other => panic!("expected WrongLength, got {other:?}"),
    }

    let stats = pipeline.finish();
    assert_eq!(stats.offered, 0, "malformed frames never count as offered load");
    assert_eq!(stats.submitted + stats.rejected + stats.decoded, 0);
}

#[test]
fn adaptive_admission_sheds_iterations_before_frames() {
    // One slow worker, a deep iteration budget and frames 0.4 dB below the
    // waterfall anchor: the ingress queue saturates and the controller must
    // lower caps instead of dropping frames.
    const FRAMES: u64 = 24;
    let table = mixed_table(30);
    let mut source = NoisySource { table: table.clone(), seed: 0x5EED, ebn0_offset_db: -0.4 };
    let pipeline = DecodePipeline::start(
        table,
        PipelineConfig {
            workers: 1,
            ingress_capacity: 4,
            egress_capacity: 4,
            max_in_flight: 9,
            admission: AdmissionPolicy::Adaptive { min_iterations: 4 },
            min_batch: 1,
            max_batch: 2,
            ..PipelineConfig::default()
        },
    );

    let outputs = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() as u64 == FRAMES {
                    break;
                }
            }
            outputs
        });
        for i in 0..FRAMES {
            pipeline.submit(soft_frame(&mut source, i)).unwrap();
        }
        consumer.join().unwrap()
    });

    let base_caps: Vec<usize> = (0..3).map(|_| 30).collect();
    let mut shed_frames = 0;
    for out in &outputs {
        assert!(out.iteration_cap <= base_caps[out.modcod]);
        assert!(out.iteration_cap >= 4, "the floor holds");
        assert!(out.iterations <= out.iteration_cap);
        shed_frames += usize::from(out.iteration_cap < base_caps[out.modcod]);
    }
    assert!(shed_frames > 0, "a saturated queue must trigger shedding");

    let stats = pipeline.finish();
    assert_eq!(stats.decoded, FRAMES, "shedding never drops frames");
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.shed, shed_frames as u64);
    assert_eq!(stats.histogram_total(), stats.decoded);
}

/// A fast-reacting detector for tests: every constant tightened so the
/// arc (observe → suspect → quarantine → probe) completes in milliseconds.
fn test_quarantine_policy() -> QuarantinePolicy {
    QuarantinePolicy {
        enabled: true,
        alpha: 0.5,
        nonconv_threshold: 0.5,
        syndrome_threshold: 0.01,
        min_decodes: 3,
        probe_passes: 2,
        probe_interval_ms: 1,
    }
}

/// Submits `frames` strongly-received all-zero codewords on slot 0 while a
/// consumer drains egress, and returns (outputs, final stats).
fn run_with_injection(
    config: PipelineConfig,
    frames: u64,
) -> (Vec<dvbs2_pipeline::DecodedFrame>, dvbs2_pipeline::PipelineStats) {
    let table = mixed_table(8);
    let n = table.entry(0).frame_len();
    let pipeline = DecodePipeline::start(table, config);
    let outputs = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut outputs = Vec::new();
            while let Some(frame) = pipeline.next_decoded() {
                outputs.push(frame);
                if outputs.len() as u64 == frames {
                    break;
                }
            }
            outputs
        });
        for i in 0..frames {
            pipeline.submit(SoftFrame { modcod: 0, stream_index: i, llrs: vec![6.0; n] }).unwrap();
        }
        consumer.join().unwrap()
    });
    (outputs, pipeline.finish())
}

#[test]
fn faulted_worker_is_quarantined_without_dropping_or_reordering_frames() {
    // Worker 0's input datapath is permanently corrupted: its frames stop
    // converging with a large residual syndrome — the exact signature the
    // detector looks for. The pipeline must contain the fault (quarantine
    // the worker, serve the stream from the healthy ones) while keeping
    // the egress contract: every frame emitted, in submission order.
    const FRAMES: u64 = 400;
    let (outputs, stats) = run_with_injection(
        PipelineConfig {
            workers: 3,
            quarantine: test_quarantine_policy(),
            fault_injection: Some(WorkerFaultInjection::permanent(0)),
            ..PipelineConfig::default()
        },
        FRAMES,
    );

    assert_eq!(outputs.len() as u64, FRAMES);
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64, "containment must not reorder egress");
    }
    assert_eq!(stats.decoded, FRAMES);
    assert_eq!(stats.emitted, FRAMES);
    assert_eq!(stats.dropped, 0, "containment must not drop frames");
    assert!(stats.faults_suspected >= 1, "the fault signature must be noticed");
    assert!(stats.quarantines >= 1, "the faulted worker must leave rotation");
    assert_eq!(stats.quarantined_now, 1, "a permanent fault never probes clean");
    assert!(stats.probes_run >= 1);
    assert!(stats.probes_failed >= 1, "corrupted probes must fail the known-answer check");
    assert_eq!(stats.reinstatements, 0);
    let faulted = outputs.iter().filter(|o| !o.converged).count() as u64;
    assert!(faulted >= 1, "the fault must have corrupted at least the warm-up frames");
    assert!(
        faulted <= FRAMES / 4,
        "quarantine must bound the damage; {faulted} of {FRAMES} frames corrupted"
    );
}

#[test]
fn transient_fault_heals_through_probing_and_reinstates_the_worker() {
    // Worker 0's first 8 decodes are corrupted, then the fault clears — a
    // transient upset. Probes share the worker's decode counter, so the
    // known-answer vector starts passing once the window expires and the
    // worker must return to rotation.
    const FRAMES: u64 = 400;
    let (outputs, stats) = run_with_injection(
        PipelineConfig {
            workers: 2,
            quarantine: test_quarantine_policy(),
            fault_injection: Some(WorkerFaultInjection::window(0, 0, 8)),
            ..PipelineConfig::default()
        },
        FRAMES,
    );

    assert_eq!(outputs.len() as u64, FRAMES);
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64);
    }
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.quarantines, 1, "the transient fires exactly one quarantine");
    assert_eq!(stats.reinstatements, 1, "clean probes must reinstate the worker");
    assert_eq!(stats.quarantined_now, 0, "nobody is left quarantined");
    assert!(stats.probes_run >= 2, "reinstatement takes probe_passes consecutive passes");
    let faulted = outputs.iter().filter(|o| !o.converged).count() as u64;
    assert!(faulted <= 8, "only window-corrupted frames may fail");
}

#[test]
fn last_healthy_worker_is_never_quarantined() {
    // A single faulted worker is the whole pool: the detector keeps
    // flagging it, but quarantining it would stop the stream entirely.
    // Degraded service beats no service — every frame still flows.
    const FRAMES: u64 = 30;
    let (outputs, stats) = run_with_injection(
        PipelineConfig {
            workers: 1,
            quarantine: QuarantinePolicy { min_decodes: 2, ..test_quarantine_policy() },
            fault_injection: Some(WorkerFaultInjection::permanent(0)),
            ..PipelineConfig::default()
        },
        FRAMES,
    );

    assert_eq!(outputs.len() as u64, FRAMES);
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64);
    }
    assert_eq!(stats.decoded, FRAMES, "the degraded worker keeps serving");
    assert_eq!(stats.dropped, 0);
    assert!(stats.faults_suspected >= 1, "the signature is still reported");
    assert_eq!(stats.quarantines, 0, "the last healthy worker must stay in rotation");
    assert_eq!(stats.quarantined_now, 0);
    assert_eq!(stats.probes_run, 0);
}

#[test]
fn finish_reports_consistent_final_counters() {
    let table = mixed_table(6);
    let n = table.entry(0).frame_len();
    let pipeline = DecodePipeline::start(
        table,
        PipelineConfig { workers: 2, egress_capacity: 16, ..PipelineConfig::default() },
    );
    for i in 0..5u64 {
        pipeline.submit(SoftFrame { modcod: 0, stream_index: i, llrs: vec![6.0; n] }).unwrap();
    }
    // Collect what finish() promises to keep consumable.
    let mut seen = Vec::new();
    for _ in 0..5 {
        seen.push(pipeline.next_decoded().unwrap().seq);
    }
    let stats = pipeline.finish();
    assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    assert_eq!(stats.decoded, 5);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.early_stopped, 5, "clean frames stop well under the cap");
    assert!(stats.early_stop_rate() > 0.99);
}
