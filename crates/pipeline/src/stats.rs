//! Pipeline observability: lock-free counters, an iteration histogram and
//! a consistent snapshot API.
//!
//! Counters are plain relaxed atomics — each is individually exact, and
//! the invariants the soak asserts (`submitted == decoded + rejected`,
//! histogram totals) hold exactly once the pipeline has quiesced, which is
//! when the assertions run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets in the iterations histogram; iteration counts at or
/// above the last bucket saturate into it.
pub const ITERATION_BUCKETS: usize = 64;

/// Shared counter block the pipeline stages update in place.
#[derive(Debug)]
pub struct StatsCore {
    /// Frames offered via `try_submit`/`submit` (accepted or not).
    pub offered: AtomicU64,
    /// Frames accepted into the pipeline.
    pub submitted: AtomicU64,
    /// Frames bounced by backpressure (queue full or in-flight cap).
    pub rejected: AtomicU64,
    /// Frames a worker finished decoding.
    pub decoded: AtomicU64,
    /// Frames handed to the egress queue in order.
    pub emitted: AtomicU64,
    /// Frames dropped (shutdown with undrained queues). Zero in any
    /// healthy run; the soak asserts it stays zero.
    pub dropped: AtomicU64,
    /// Decodes that stopped early on a clean syndrome.
    pub early_stopped: AtomicU64,
    /// Decodes that ran under a lowered iteration cap (admission control).
    pub shed: AtomicU64,
    /// Total decode iterations across all frames.
    pub iterations_total: AtomicU64,
    /// Total nanoseconds spent inside `decode_into` across all workers.
    pub decode_ns: AtomicU64,
    /// Iterations histogram: bucket `i` counts frames that took `i`
    /// iterations (the last bucket saturates).
    pub iteration_histogram: [AtomicU64; ITERATION_BUCKETS],
    /// Deepest ingress-queue occupancy observed.
    pub ingress_watermark: AtomicUsize,
    /// Deepest reorder-buffer occupancy observed.
    pub reorder_watermark: AtomicUsize,
    /// Frames currently inside the pipeline (submitted, not yet consumed).
    pub in_flight: AtomicUsize,
    /// Times a worker's decode statistics crossed the anomaly thresholds.
    pub faults_suspected: AtomicU64,
    /// Times a worker entered quarantine (stopped taking traffic).
    pub quarantines: AtomicU64,
    /// Times a quarantined worker passed its known-answer probes and
    /// returned to rotation.
    pub reinstatements: AtomicU64,
    /// Workers currently quarantined. Also the coordination point of the
    /// never-quarantine-the-last-healthy-worker guard.
    pub quarantined_now: AtomicUsize,
    /// Known-answer probes run by quarantined workers.
    pub probes_run: AtomicU64,
    /// Known-answer probes that failed (wrong word or no convergence).
    pub probes_failed: AtomicU64,
}

impl Default for StatsCore {
    fn default() -> Self {
        StatsCore {
            offered: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            early_stopped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            iterations_total: AtomicU64::new(0),
            decode_ns: AtomicU64::new(0),
            iteration_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            ingress_watermark: AtomicUsize::new(0),
            reorder_watermark: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            faults_suspected: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            reinstatements: AtomicU64::new(0),
            quarantined_now: AtomicUsize::new(0),
            probes_run: AtomicU64::new(0),
            probes_failed: AtomicU64::new(0),
        }
    }
}

impl StatsCore {
    /// Records one finished decode.
    pub fn record_decode(&self, iterations: usize, early_stopped: bool, shed: bool, ns: u64) {
        self.decoded.fetch_add(1, Ordering::Relaxed);
        self.iterations_total.fetch_add(iterations as u64, Ordering::Relaxed);
        self.decode_ns.fetch_add(ns, Ordering::Relaxed);
        let bucket = iterations.min(ITERATION_BUCKETS - 1);
        self.iteration_histogram[bucket].fetch_add(1, Ordering::Relaxed);
        if early_stopped {
            self.early_stopped.fetch_add(1, Ordering::Relaxed);
        }
        if shed {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raises a watermark counter to at least `depth`.
    pub fn raise_watermark(slot: &AtomicUsize, depth: usize) {
        slot.fetch_max(depth, Ordering::Relaxed);
    }

    /// Takes a snapshot of every counter.
    pub fn snapshot(&self) -> PipelineStats {
        let mut iteration_histogram = [0u64; ITERATION_BUCKETS];
        for (out, bucket) in iteration_histogram.iter_mut().zip(&self.iteration_histogram) {
            *out = bucket.load(Ordering::Relaxed);
        }
        PipelineStats {
            offered: self.offered.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            early_stopped: self.early_stopped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            iterations_total: self.iterations_total.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            iteration_histogram,
            ingress_watermark: self.ingress_watermark.load(Ordering::Relaxed),
            reorder_watermark: self.reorder_watermark.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            faults_suspected: self.faults_suspected.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            reinstatements: self.reinstatements.load(Ordering::Relaxed),
            quarantined_now: self.quarantined_now.load(Ordering::Relaxed),
            probes_run: self.probes_run.load(Ordering::Relaxed),
            probes_failed: self.probes_failed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the pipeline's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Frames offered via `try_submit`/`submit` (accepted or not).
    pub offered: u64,
    /// Frames accepted into the pipeline.
    pub submitted: u64,
    /// Frames bounced by backpressure.
    pub rejected: u64,
    /// Frames decoded by the worker pool.
    pub decoded: u64,
    /// Frames emitted in order at egress.
    pub emitted: u64,
    /// Frames dropped (shutdown with undrained queues).
    pub dropped: u64,
    /// Decodes that stopped early on a clean syndrome.
    pub early_stopped: u64,
    /// Decodes run under a lowered (shed) iteration cap.
    pub shed: u64,
    /// Total decode iterations.
    pub iterations_total: u64,
    /// Total nanoseconds spent decoding.
    pub decode_ns: u64,
    /// Per-iteration-count frame histogram (last bucket saturates).
    pub iteration_histogram: [u64; ITERATION_BUCKETS],
    /// Deepest ingress occupancy observed.
    pub ingress_watermark: usize,
    /// Deepest reorder-buffer occupancy observed.
    pub reorder_watermark: usize,
    /// Frames inside the pipeline at snapshot time.
    pub in_flight: usize,
    /// Anomaly-threshold crossings (suspected worker faults).
    pub faults_suspected: u64,
    /// Workers that entered quarantine.
    pub quarantines: u64,
    /// Quarantined workers reinstated after passing their probes.
    pub reinstatements: u64,
    /// Workers quarantined at snapshot time.
    pub quarantined_now: usize,
    /// Known-answer probes run.
    pub probes_run: u64,
    /// Known-answer probes failed.
    pub probes_failed: u64,
}

impl PipelineStats {
    /// Sum of the iteration histogram — equals `decoded` at quiescence.
    pub fn histogram_total(&self) -> u64 {
        self.iteration_histogram.iter().sum()
    }

    /// Mean iterations per decoded frame.
    pub fn mean_iterations(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.iterations_total as f64 / self.decoded as f64
        }
    }

    /// Fraction of decodes that terminated early.
    pub fn early_stop_rate(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.early_stopped as f64 / self.decoded as f64
        }
    }

    /// Mean decode wall time per frame in nanoseconds.
    pub fn ns_per_frame(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.decode_ns as f64 / self.decoded as f64
        }
    }

    /// One-line log form, suitable for the periodic progress line.
    pub fn log_line(&self) -> String {
        format!(
            "pipeline: in={} out={} rej={} drop={} inflight={} it_mean={:.2} early={:.0}% \
             ns/frame={:.0} wm_in={} wm_reorder={} quar={}",
            self.submitted,
            self.emitted,
            self.rejected,
            self.dropped,
            self.in_flight,
            self.mean_iterations(),
            100.0 * self.early_stop_rate(),
            self.ns_per_frame(),
            self.ingress_watermark,
            self.reorder_watermark,
            self.quarantined_now,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_decodes() {
        let core = StatsCore::default();
        core.record_decode(5, true, false, 1_000);
        core.record_decode(30, false, true, 3_000);
        core.record_decode(500, false, false, 2_000); // saturates the histogram
        let s = core.snapshot();
        assert_eq!(s.decoded, 3);
        assert_eq!(s.early_stopped, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.iterations_total, 535);
        assert_eq!(s.decode_ns, 6_000);
        assert_eq!(s.iteration_histogram[5], 1);
        assert_eq!(s.iteration_histogram[30], 1);
        assert_eq!(s.iteration_histogram[ITERATION_BUCKETS - 1], 1);
        assert_eq!(s.histogram_total(), s.decoded);
        assert!((s.mean_iterations() - 535.0 / 3.0).abs() < 1e-12);
        assert!((s.ns_per_frame() - 2_000.0).abs() < 1e-12);
    }

    #[test]
    fn watermarks_only_rise() {
        let core = StatsCore::default();
        StatsCore::raise_watermark(&core.ingress_watermark, 4);
        StatsCore::raise_watermark(&core.ingress_watermark, 2);
        StatsCore::raise_watermark(&core.ingress_watermark, 9);
        assert_eq!(core.snapshot().ingress_watermark, 9);
    }

    #[test]
    fn watermark_never_under_reports_under_contention() {
        // The watermark is a single `fetch_max`: one atomic read-modify-
        // write, so no interleaving of concurrent raises can lose the
        // maximum (a load-compare-store sequence could). Hammer it from
        // several threads with interleaved rising/falling depths and
        // assert the final value is exactly the global maximum, every run.
        for round in 0..20usize {
            let core = StatsCore::default();
            let threads = 4usize;
            let per_thread = 500usize;
            let global_max = (threads - 1) * per_thread + (per_thread - 1);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let slot = &core.reorder_watermark;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            // Rising then falling within each thread, so
                            // late *smaller* raises race against earlier
                            // larger ones from other threads.
                            StatsCore::raise_watermark(slot, t * per_thread + i);
                            StatsCore::raise_watermark(slot, i / 2);
                        }
                    });
                }
            });
            assert_eq!(
                core.snapshot().reorder_watermark,
                global_max,
                "round {round}: watermark under-reported the deepest occupancy"
            );
        }
    }

    #[test]
    fn rates_are_defined_on_the_empty_pipeline() {
        let s = StatsCore::default().snapshot();
        assert_eq!(s.mean_iterations(), 0.0);
        assert_eq!(s.early_stop_rate(), 0.0);
        assert_eq!(s.ns_per_frame(), 0.0);
        assert!(s.log_line().starts_with("pipeline: in=0"));
    }
}
