//! Pipeline observability: lock-free counters, an iteration histogram and
//! a consistent snapshot API.
//!
//! Counters are plain relaxed atomics — each is individually exact, and
//! the invariants the soak asserts (`submitted == decoded + rejected`,
//! histogram totals) hold exactly once the pipeline has quiesced, which is
//! when the assertions run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets in the iterations histogram; iteration counts at or
/// above the last bucket saturate into it.
pub const ITERATION_BUCKETS: usize = 64;

/// Number of buckets in the end-to-end latency histogram: log-linear with
/// 16 sub-buckets per power of two (≤ 6.25 % relative bucket width), exact
/// below 16 ns, covering up to `2^39` ns (~9 minutes) before saturating.
pub const LATENCY_BUCKETS: usize = 576;

/// The latency histogram bucket a nanosecond value falls into.
pub fn latency_bucket(ns: u64) -> usize {
    if ns < 16 {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as u64; // >= 4
    let sub = (ns >> (exp - 4)) - 16; // 0..16 within the power of two
    (((exp - 3) * 16 + sub) as usize).min(LATENCY_BUCKETS - 1)
}

/// The smallest nanosecond value that lands in `bucket` — the conservative
/// (lower-bound) representative a quantile report uses.
pub fn latency_bucket_floor_ns(bucket: usize) -> u64 {
    assert!(bucket < LATENCY_BUCKETS, "bucket {bucket} out of range");
    if bucket < 16 {
        return bucket as u64;
    }
    let exp = bucket as u64 / 16 + 3;
    let sub = bucket as u64 % 16;
    (16 + sub) << (exp - 4)
}

/// Nearest-rank quantile over a bucketed histogram: the index of the
/// bucket holding the `ceil(q * total)`-th observation, or `None` when the
/// histogram is empty.
pub fn histogram_quantile_index(counts: &[u64], q: f64) -> Option<usize> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(i);
        }
    }
    Some(counts.len() - 1)
}

/// Shared counter block the pipeline stages update in place.
#[derive(Debug)]
pub struct StatsCore {
    /// Frames offered via `try_submit`/`submit` (accepted or not).
    pub offered: AtomicU64,
    /// Frames accepted into the pipeline.
    pub submitted: AtomicU64,
    /// Frames bounced by backpressure (queue full or in-flight cap).
    pub rejected: AtomicU64,
    /// Frames a worker finished decoding.
    pub decoded: AtomicU64,
    /// Frames handed to the egress queue in order.
    pub emitted: AtomicU64,
    /// Frames dropped (shutdown with undrained queues). Zero in any
    /// healthy run; the soak asserts it stays zero.
    pub dropped: AtomicU64,
    /// Decodes that stopped early on a clean syndrome.
    pub early_stopped: AtomicU64,
    /// Decodes that ran under a lowered iteration cap (admission control).
    pub shed: AtomicU64,
    /// Total decode iterations across all frames.
    pub iterations_total: AtomicU64,
    /// Total nanoseconds spent inside `decode_into` across all workers.
    pub decode_ns: AtomicU64,
    /// Iterations histogram: bucket `i` counts frames that took `i`
    /// iterations (the last bucket saturates).
    pub iteration_histogram: [AtomicU64; ITERATION_BUCKETS],
    /// Deepest ingress-queue occupancy observed.
    pub ingress_watermark: AtomicUsize,
    /// Deepest reorder-buffer occupancy observed.
    pub reorder_watermark: AtomicUsize,
    /// Frames currently inside the pipeline (submitted, not yet consumed).
    pub in_flight: AtomicUsize,
    /// Times a worker's decode statistics crossed the anomaly thresholds.
    pub faults_suspected: AtomicU64,
    /// Times a worker entered quarantine (stopped taking traffic).
    pub quarantines: AtomicU64,
    /// Times a quarantined worker passed its known-answer probes and
    /// returned to rotation.
    pub reinstatements: AtomicU64,
    /// Workers currently quarantined. Also the coordination point of the
    /// never-quarantine-the-last-healthy-worker guard.
    pub quarantined_now: AtomicUsize,
    /// Known-answer probes run by quarantined workers.
    pub probes_run: AtomicU64,
    /// Known-answer probes that failed (wrong word or no convergence).
    pub probes_failed: AtomicU64,
    /// Total accepted→emitted nanoseconds across all emitted frames.
    pub latency_ns_total: AtomicU64,
    /// Worst accepted→emitted latency observed (nanoseconds).
    pub latency_watermark_ns: AtomicU64,
    /// Log-linear accepted→emitted latency histogram (see
    /// [`latency_bucket`]).
    pub latency_histogram: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for StatsCore {
    fn default() -> Self {
        StatsCore {
            offered: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            early_stopped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            iterations_total: AtomicU64::new(0),
            decode_ns: AtomicU64::new(0),
            iteration_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            ingress_watermark: AtomicUsize::new(0),
            reorder_watermark: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            faults_suspected: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            reinstatements: AtomicU64::new(0),
            quarantined_now: AtomicUsize::new(0),
            probes_run: AtomicU64::new(0),
            probes_failed: AtomicU64::new(0),
            latency_ns_total: AtomicU64::new(0),
            latency_watermark_ns: AtomicU64::new(0),
            latency_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StatsCore {
    /// Records one finished decode.
    pub fn record_decode(&self, iterations: usize, early_stopped: bool, shed: bool, ns: u64) {
        self.decoded.fetch_add(1, Ordering::Relaxed);
        self.iterations_total.fetch_add(iterations as u64, Ordering::Relaxed);
        self.decode_ns.fetch_add(ns, Ordering::Relaxed);
        let bucket = iterations.min(ITERATION_BUCKETS - 1);
        self.iteration_histogram[bucket].fetch_add(1, Ordering::Relaxed);
        if early_stopped {
            self.early_stopped.fetch_add(1, Ordering::Relaxed);
        }
        if shed {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raises a watermark counter to at least `depth`.
    pub fn raise_watermark(slot: &AtomicUsize, depth: usize) {
        slot.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one frame's accepted→emitted latency.
    pub fn record_latency(&self, ns: u64) {
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.latency_watermark_ns.fetch_max(ns, Ordering::Relaxed);
        self.latency_histogram[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of every counter.
    pub fn snapshot(&self) -> PipelineStats {
        let mut iteration_histogram = [0u64; ITERATION_BUCKETS];
        for (out, bucket) in iteration_histogram.iter_mut().zip(&self.iteration_histogram) {
            *out = bucket.load(Ordering::Relaxed);
        }
        let mut latency_histogram = [0u64; LATENCY_BUCKETS];
        for (out, bucket) in latency_histogram.iter_mut().zip(&self.latency_histogram) {
            *out = bucket.load(Ordering::Relaxed);
        }
        PipelineStats {
            offered: self.offered.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            early_stopped: self.early_stopped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            iterations_total: self.iterations_total.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            iteration_histogram,
            ingress_watermark: self.ingress_watermark.load(Ordering::Relaxed),
            reorder_watermark: self.reorder_watermark.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            faults_suspected: self.faults_suspected.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            reinstatements: self.reinstatements.load(Ordering::Relaxed),
            quarantined_now: self.quarantined_now.load(Ordering::Relaxed),
            probes_run: self.probes_run.load(Ordering::Relaxed),
            probes_failed: self.probes_failed.load(Ordering::Relaxed),
            latency_ns_total: self.latency_ns_total.load(Ordering::Relaxed),
            latency_watermark_ns: self.latency_watermark_ns.load(Ordering::Relaxed),
            latency_histogram,
        }
    }
}

/// A point-in-time copy of the pipeline's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Frames offered via `try_submit`/`submit` (accepted or not).
    pub offered: u64,
    /// Frames accepted into the pipeline.
    pub submitted: u64,
    /// Frames bounced by backpressure.
    pub rejected: u64,
    /// Frames decoded by the worker pool.
    pub decoded: u64,
    /// Frames emitted in order at egress.
    pub emitted: u64,
    /// Frames dropped (shutdown with undrained queues).
    pub dropped: u64,
    /// Decodes that stopped early on a clean syndrome.
    pub early_stopped: u64,
    /// Decodes run under a lowered (shed) iteration cap.
    pub shed: u64,
    /// Total decode iterations.
    pub iterations_total: u64,
    /// Total nanoseconds spent decoding.
    pub decode_ns: u64,
    /// Per-iteration-count frame histogram (last bucket saturates).
    pub iteration_histogram: [u64; ITERATION_BUCKETS],
    /// Deepest ingress occupancy observed.
    pub ingress_watermark: usize,
    /// Deepest reorder-buffer occupancy observed.
    pub reorder_watermark: usize,
    /// Frames inside the pipeline at snapshot time.
    pub in_flight: usize,
    /// Anomaly-threshold crossings (suspected worker faults).
    pub faults_suspected: u64,
    /// Workers that entered quarantine.
    pub quarantines: u64,
    /// Quarantined workers reinstated after passing their probes.
    pub reinstatements: u64,
    /// Workers quarantined at snapshot time.
    pub quarantined_now: usize,
    /// Known-answer probes run.
    pub probes_run: u64,
    /// Known-answer probes failed.
    pub probes_failed: u64,
    /// Total accepted→emitted nanoseconds across emitted frames.
    pub latency_ns_total: u64,
    /// Worst accepted→emitted latency observed (nanoseconds).
    pub latency_watermark_ns: u64,
    /// Log-linear accepted→emitted latency histogram (bucket geometry in
    /// [`latency_bucket`] / [`latency_bucket_floor_ns`]).
    pub latency_histogram: [u64; LATENCY_BUCKETS],
}

impl PipelineStats {
    /// Sum of the iteration histogram — equals `decoded` at quiescence.
    pub fn histogram_total(&self) -> u64 {
        self.iteration_histogram.iter().sum()
    }

    /// Mean iterations per decoded frame.
    pub fn mean_iterations(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.iterations_total as f64 / self.decoded as f64
        }
    }

    /// Fraction of decodes that terminated early.
    pub fn early_stop_rate(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.early_stopped as f64 / self.decoded as f64
        }
    }

    /// Mean decode wall time per frame in nanoseconds.
    pub fn ns_per_frame(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.decode_ns as f64 / self.decoded as f64
        }
    }

    /// Exact iteration-count quantile (nearest rank): the iteration count
    /// below which a fraction `q` of decoded frames fall. Exact because
    /// every histogram bucket is one iteration wide (the last bucket
    /// saturates, so a result of `ITERATION_BUCKETS - 1` means "at least").
    /// Returns 0 when nothing has been decoded.
    pub fn iteration_quantile(&self, q: f64) -> usize {
        histogram_quantile_index(&self.iteration_histogram, q).unwrap_or(0)
    }

    /// Accepted→emitted latency quantile in nanoseconds (nearest rank over
    /// the log-linear histogram, reported as the bucket's lower bound — a
    /// conservative value within 6.25 % of the true quantile). Returns 0
    /// before any frame has been emitted.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        histogram_quantile_index(&self.latency_histogram, q).map_or(0, latency_bucket_floor_ns)
    }

    /// Mean accepted→emitted latency per emitted frame in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.latency_ns_total as f64 / self.emitted as f64
        }
    }

    /// One-line log form, suitable for the periodic progress line.
    pub fn log_line(&self) -> String {
        let us = |ns: u64| ns as f64 / 1_000.0;
        format!(
            "pipeline: in={} out={} rej={} drop={} inflight={} it_mean={:.2} it_p99={} \
             early={:.0}% ns/frame={:.0} lat_p50={:.0}us lat_p99={:.0}us lat_p999={:.0}us \
             lat_max={:.0}us wm_in={} wm_reorder={} quar={}",
            self.submitted,
            self.emitted,
            self.rejected,
            self.dropped,
            self.in_flight,
            self.mean_iterations(),
            self.iteration_quantile(0.99),
            100.0 * self.early_stop_rate(),
            self.ns_per_frame(),
            us(self.latency_quantile_ns(0.50)),
            us(self.latency_quantile_ns(0.99)),
            us(self.latency_quantile_ns(0.999)),
            us(self.latency_watermark_ns),
            self.ingress_watermark,
            self.reorder_watermark,
            self.quarantined_now,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_decodes() {
        let core = StatsCore::default();
        core.record_decode(5, true, false, 1_000);
        core.record_decode(30, false, true, 3_000);
        core.record_decode(500, false, false, 2_000); // saturates the histogram
        let s = core.snapshot();
        assert_eq!(s.decoded, 3);
        assert_eq!(s.early_stopped, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.iterations_total, 535);
        assert_eq!(s.decode_ns, 6_000);
        assert_eq!(s.iteration_histogram[5], 1);
        assert_eq!(s.iteration_histogram[30], 1);
        assert_eq!(s.iteration_histogram[ITERATION_BUCKETS - 1], 1);
        assert_eq!(s.histogram_total(), s.decoded);
        assert!((s.mean_iterations() - 535.0 / 3.0).abs() < 1e-12);
        assert!((s.ns_per_frame() - 2_000.0).abs() < 1e-12);
    }

    #[test]
    fn watermarks_only_rise() {
        let core = StatsCore::default();
        StatsCore::raise_watermark(&core.ingress_watermark, 4);
        StatsCore::raise_watermark(&core.ingress_watermark, 2);
        StatsCore::raise_watermark(&core.ingress_watermark, 9);
        assert_eq!(core.snapshot().ingress_watermark, 9);
    }

    #[test]
    fn watermark_never_under_reports_under_contention() {
        // The watermark is a single `fetch_max`: one atomic read-modify-
        // write, so no interleaving of concurrent raises can lose the
        // maximum (a load-compare-store sequence could). Hammer it from
        // several threads with interleaved rising/falling depths and
        // assert the final value is exactly the global maximum, every run.
        for round in 0..20usize {
            let core = StatsCore::default();
            let threads = 4usize;
            let per_thread = 500usize;
            let global_max = (threads - 1) * per_thread + (per_thread - 1);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let slot = &core.reorder_watermark;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            // Rising then falling within each thread, so
                            // late *smaller* raises race against earlier
                            // larger ones from other threads.
                            StatsCore::raise_watermark(slot, t * per_thread + i);
                            StatsCore::raise_watermark(slot, i / 2);
                        }
                    });
                }
            });
            assert_eq!(
                core.snapshot().reorder_watermark,
                global_max,
                "round {round}: watermark under-reported the deepest occupancy"
            );
        }
    }

    #[test]
    fn latency_bucket_geometry_is_monotone_and_self_consistent() {
        // Every bucket's floor maps back to that bucket, and bucket indexes
        // never decrease as values grow.
        for bucket in 0..LATENCY_BUCKETS {
            let floor = latency_bucket_floor_ns(bucket);
            assert_eq!(latency_bucket(floor), bucket, "floor of bucket {bucket}");
        }
        let mut last = 0usize;
        for ns in [0u64, 1, 15, 16, 17, 31, 32, 1_000, 1_000_000, 1_000_000_000, u64::MAX] {
            let b = latency_bucket(ns);
            assert!(b >= last, "bucket regressed at {ns}");
            last = b;
        }
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1, "saturates");
        // Relative bucket width stays within 1/16 above the linear range.
        for bucket in 16..LATENCY_BUCKETS - 1 {
            let floor = latency_bucket_floor_ns(bucket);
            let next = latency_bucket_floor_ns(bucket + 1);
            assert!((next - floor) as f64 / floor as f64 <= 1.0 / 16.0 + 1e-12, "bucket {bucket}");
        }
    }

    #[test]
    fn iteration_quantiles_are_exact_nearest_rank() {
        let core = StatsCore::default();
        // 90 one-iteration frames, 9 ten-iteration frames, 1 forty.
        for _ in 0..90 {
            core.record_decode(1, true, false, 0);
        }
        for _ in 0..9 {
            core.record_decode(10, false, false, 0);
        }
        core.record_decode(40, false, false, 0);
        let s = core.snapshot();
        assert_eq!(s.iteration_quantile(0.50), 1);
        assert_eq!(s.iteration_quantile(0.90), 1);
        assert_eq!(s.iteration_quantile(0.99), 10);
        assert_eq!(s.iteration_quantile(0.999), 40);
        assert_eq!(s.iteration_quantile(1.0), 40);
        assert_eq!(StatsCore::default().snapshot().iteration_quantile(0.5), 0, "empty");
    }

    #[test]
    fn latency_quantiles_track_recorded_values() {
        let core = StatsCore::default();
        for _ in 0..99 {
            core.record_latency(1_000);
        }
        core.record_latency(1_000_000);
        // `emitted` drives the mean's denominator.
        core.emitted.store(100, Ordering::Relaxed);
        let s = core.snapshot();
        let p50 = s.latency_quantile_ns(0.50);
        assert!((992..=1_000).contains(&p50), "p50 {p50} within one bucket below 1000");
        let p999 = s.latency_quantile_ns(0.999);
        assert!(p999 > 900_000 && p999 <= 1_000_000, "p999 {p999}");
        assert_eq!(s.latency_watermark_ns, 1_000_000);
        assert!((s.mean_latency_ns() - 10_990.0).abs() < 1e-9);
        assert!(s.log_line().contains("lat_p50="), "log line exposes latency");
    }

    #[test]
    fn rates_are_defined_on_the_empty_pipeline() {
        let s = StatsCore::default().snapshot();
        assert_eq!(s.mean_iterations(), 0.0);
        assert_eq!(s.early_stop_rate(), 0.0);
        assert_eq!(s.ns_per_frame(), 0.0);
        assert!(s.log_line().starts_with("pipeline: in=0"));
    }
}
