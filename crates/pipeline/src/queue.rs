//! A bounded MPMC queue on `Mutex` + `Condvar` — the stage connector of
//! the pipeline.
//!
//! The workspace deliberately hand-rolls this instead of pulling in a
//! lock-free crate: the pipeline's frames are tens of kilobytes, so a
//! decode dwarfs any queue operation, and a mutexed ring keeps the
//! backpressure semantics (`try_push` returning the rejected item,
//! blocking `push`/`pop`, close-and-drain shutdown) easy to verify.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest occupancy ever observed — the soak asserts boundedness
    /// against this, catching a queue that silently grows past its cap.
    high_watermark: usize,
}

/// A bounded multi-producer multi-consumer queue.
///
/// All operations are safe under any number of producer and consumer
/// threads. After [`BoundedQueue::close`], pushes fail, and pops drain the
/// remaining items before reporting exhaustion with `None`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes.
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity rendezvous is never
    /// what a buffered pipeline stage wants).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded queue needs room for at least one item");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_watermark: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to push without blocking. Returns the item back to the
    /// caller when the queue is full or closed — explicit backpressure,
    /// not silent drop.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("no panics hold the queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        inner.high_watermark = inner.high_watermark.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pushes, blocking while the queue is full. Returns the item back
    /// only if the queue closes while waiting.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("no panics hold the queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                inner.high_watermark = inner.high_watermark.max(inner.items.len());
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("no panics hold the queue lock");
        }
    }

    /// Pops, blocking while the queue is empty. Returns `None` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("no panics hold the queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("no panics hold the queue lock");
        }
    }

    /// Pops without blocking; `None` means empty right now (or drained).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("no panics hold the queue lock");
        let item = inner.items.pop_front();
        drop(inner);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: subsequent pushes fail, blocked producers wake
    /// with their item back, and consumers drain what remains.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("no panics hold the queue lock");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("no panics hold the queue lock").closed
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no panics hold the queue lock").items.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest occupancy ever reached.
    pub fn high_watermark(&self) -> usize {
        self.inner.lock().expect("no panics hold the queue lock").high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_bounces_at_capacity_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3), "full queue returns the item");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()), "room frees after a pop");
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn close_drains_then_reports_exhaustion() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(12), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None, "drained and closed");
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_push_waits_for_room_and_pop_waits_for_items() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue until we pop.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));

        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_producers_and_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        let empty = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let empty = Arc::clone(&empty);
            std::thread::spawn(move || empty.pop())
        };
        q.close();
        empty.close();
        assert_eq!(producer.join().unwrap(), Err(1), "woken producer gets its item back");
        assert_eq!(consumer.join().unwrap(), None, "woken consumer sees exhaustion");
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let collectors: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = collectors.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expected: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100u64).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expected);
        assert!(q.high_watermark() <= q.capacity());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
