//! Streaming decode pipeline: a bounded, instrumented multi-frame service
//! layer over the DVB-S2 decoder matrix.
//!
//! The rest of the workspace decodes one frame at a time; a receiver
//! decodes a *stream* — demapped soft-bit frames arriving continuously,
//! each under its own MODCOD, with a service-rate obligation (the paper's
//! 255 Mbit/s base-station requirement is a sustained number, not a
//! single-frame one). This crate is that service layer:
//!
//! * [`DecodePipeline`] — ingress queue → worker pool → in-order egress,
//!   every stage bounded, with per-worker decoder reuse via
//!   [`Decoder::decode_into`](dvbs2_decoder::Decoder::decode_into);
//! * [`BoundedQueue`] — the backpressuring stage connector;
//! * [`AdmissionController`] — iteration-budget load shedding driven by
//!   the hardware [`ThroughputModel`](dvbs2_hardware::ThroughputModel)
//!   (the paper's Table 3 iterations-vs-throughput trade, run backwards);
//! * [`QuarantinePolicy`] — syndrome-anomaly fault containment: a worker
//!   whose decode statistics look like broken hardware (convergence
//!   collapse plus abnormal residual syndrome weight) takes itself out of
//!   rotation and re-probes with a known-answer vector until healthy;
//! * [`PipelineStats`] — frames in/out/rejected/dropped, queue
//!   watermarks, an iterations histogram, early-stop rate, ns/frame and
//!   the fault-containment counters.
//!
//! # Example
//!
//! ```
//! use dvbs2::channel::Modulation;
//! use dvbs2::ldpc::{CodeRate, FrameSize};
//! use dvbs2::{Modcod, ModcodTable};
//! use dvbs2_pipeline::{DecodePipeline, PipelineConfig, SoftFrame};
//!
//! let table = ModcodTable::build(&[Modcod::new(
//!     Modulation::Bpsk,
//!     CodeRate::R1_2,
//!     FrameSize::Short,
//! )])
//! .unwrap();
//! let n = table.entry(0).frame_len();
//! let pipeline = DecodePipeline::start(
//!     table,
//!     PipelineConfig { workers: 2, ..PipelineConfig::default() },
//! );
//! for i in 0..4u64 {
//!     // A confidently-received all-zero codeword.
//!     let frame = SoftFrame { modcod: 0, stream_index: i, llrs: vec![6.0; n] };
//!     pipeline.submit(frame).unwrap();
//! }
//! for i in 0..4u64 {
//!     let out = pipeline.next_decoded().unwrap();
//!     assert_eq!(out.seq, i, "egress is in submission order");
//!     assert!(out.converged);
//! }
//! let stats = pipeline.finish();
//! assert_eq!(stats.submitted, 4);
//! assert_eq!(stats.decoded, 4);
//! assert_eq!(stats.rejected + stats.dropped, 0);
//! ```

#![warn(missing_docs)]

mod admission;
mod health;
mod queue;
mod service;
mod stats;

pub use admission::{AdmissionController, AdmissionPolicy, DEMAND_MULTIPLIERS, OCCUPANCY_STEPS};
pub use health::{QuarantinePolicy, WorkerFaultInjection, WorkerHealth};
pub use queue::BoundedQueue;
pub use service::{
    DecodePipeline, DecodedFrame, PipelineConfig, PipelineHealth, SoftFrame, SubmitError,
};
pub use stats::{
    histogram_quantile_index, latency_bucket, latency_bucket_floor_ns, PipelineStats, StatsCore,
    ITERATION_BUCKETS, LATENCY_BUCKETS,
};
