//! Iteration-budget admission control.
//!
//! The paper's Table 3 trades iterations against throughput: the core at a
//! lower iteration cap serves proportionally more Mbit/s at a BER cost.
//! The pipeline runs that trade-off backwards as its load-shedding policy —
//! when the ingress queue fills, the service demands more throughput from
//! the (modeled) core, [`ThroughputModel::iterations_for_throughput`]
//! answers with the largest cap that still meets the demand, and frames
//! decode under the lowered cap *instead of being dropped*. Only when the
//! ladder bottoms out does backpressure reach the producer as a
//! [`crate::SubmitError::Rejected`].

use dvbs2::ModcodTable;
use dvbs2_hardware::ThroughputModel;

/// Occupancy thresholds (fractions of ingress capacity) at which the
/// demanded throughput escalates. Paired with [`DEMAND_MULTIPLIERS`].
pub const OCCUPANCY_STEPS: [f64; 3] = [0.5, 0.75, 0.9];

/// Throughput demand at each pressure level, as a multiple of the
/// modeled throughput at the slot's configured iteration cap. Level 0
/// (below the first occupancy step) demands 1× — the configured cap.
pub const DEMAND_MULTIPLIERS: [f64; 4] = [1.0, 1.25, 1.5, 2.0];

/// When to shed iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Never lower caps: every frame decodes at its slot's configured
    /// iteration budget. Bit-parity soaks run with this so multi-threaded
    /// output is comparable to a single-threaded reference.
    #[default]
    Off,
    /// Lower caps with ingress occupancy, never below `min_iterations`.
    Adaptive {
        /// Floor under shedding; caps never drop below this.
        min_iterations: usize,
    },
}

/// Per-MODCOD-slot iteration caps, one rung per pressure level.
#[derive(Debug, Clone)]
struct Ladder {
    rungs: [usize; DEMAND_MULTIPLIERS.len()],
}

/// Maps ingress occupancy to per-slot iteration caps.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    ladders: Vec<Ladder>,
}

impl AdmissionController {
    /// Precomputes the shedding ladder of every slot in `table` against a
    /// hardware throughput model (`model.iterations` is overridden per
    /// slot by the slot's configured cap).
    pub fn new(policy: AdmissionPolicy, table: &ModcodTable, model: &ThroughputModel) -> Self {
        let min_iterations = match policy {
            AdmissionPolicy::Off => 1,
            AdmissionPolicy::Adaptive { min_iterations } => min_iterations.max(1),
        };
        let ladders = table
            .iter()
            .map(|entry| {
                let cap = entry.profile.config.max_iterations.max(1);
                let slot_model = ThroughputModel { iterations: cap, ..*model };
                let base = slot_model.throughput_mbps(entry.params());
                let mut rungs = [cap; DEMAND_MULTIPLIERS.len()];
                for (rung, &mult) in rungs.iter_mut().zip(&DEMAND_MULTIPLIERS) {
                    *rung = slot_model
                        .iterations_for_throughput(entry.params(), base * mult)
                        .unwrap_or(min_iterations)
                        .clamp(min_iterations.min(cap), cap);
                }
                Ladder { rungs }
            })
            .collect();
        AdmissionController { policy, ladders }
    }

    /// The iteration cap for a frame of `slot` given the current ingress
    /// occupancy in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on a slot the table did not define.
    pub fn cap_for(&self, slot: usize, occupancy: f64) -> usize {
        let ladder = &self.ladders[slot];
        if self.policy == AdmissionPolicy::Off {
            return ladder.rungs[0];
        }
        let level = OCCUPANCY_STEPS.iter().filter(|&&step| occupancy >= step).count();
        ladder.rungs[level]
    }

    /// The slot's configured (unshed) cap.
    pub fn base_cap(&self, slot: usize) -> usize {
        self.ladders[slot].rungs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2::channel::Modulation;
    use dvbs2::ldpc::{CodeRate, FrameSize};
    use dvbs2::Modcod;
    use dvbs2_hardware::{ThroughputModel, ST_0_13_UM};

    fn table() -> ModcodTable {
        ModcodTable::build(&[
            Modcod::new(Modulation::Bpsk, CodeRate::R1_2, FrameSize::Short),
            Modcod::new(Modulation::Psk8, CodeRate::R3_4, FrameSize::Short),
        ])
        .unwrap()
    }

    #[test]
    fn off_policy_always_returns_the_configured_cap() {
        let t = table();
        let ctl = AdmissionController::new(
            AdmissionPolicy::Off,
            &t,
            &ThroughputModel::paper(&ST_0_13_UM),
        );
        for slot in 0..t.len() {
            let cap = t.entry(slot).profile.config.max_iterations;
            assert_eq!(ctl.cap_for(slot, 0.0), cap);
            assert_eq!(ctl.cap_for(slot, 1.0), cap, "occupancy must not matter when off");
            assert_eq!(ctl.base_cap(slot), cap);
        }
    }

    #[test]
    fn adaptive_caps_fall_monotonically_with_pressure() {
        let t = table();
        let ctl = AdmissionController::new(
            AdmissionPolicy::Adaptive { min_iterations: 4 },
            &t,
            &ThroughputModel::paper(&ST_0_13_UM),
        );
        for slot in 0..t.len() {
            let caps: Vec<usize> =
                [0.0, 0.5, 0.75, 0.9].iter().map(|&o| ctl.cap_for(slot, o)).collect();
            assert_eq!(caps[0], ctl.base_cap(slot), "idle pipeline sheds nothing");
            assert!(caps.windows(2).all(|w| w[1] <= w[0]), "caps must fall: {caps:?}");
            assert!(caps[3] < caps[0], "full pressure must actually shed: {caps:?}");
            assert!(caps.iter().all(|&c| c >= 4), "floor respected: {caps:?}");
        }
    }

    #[test]
    fn demanding_double_throughput_roughly_halves_iterations() {
        // The Table 3 shape: iteration time dominates the frame cycle
        // budget, so 2x throughput needs just under half the iterations.
        let t = table();
        let ctl = AdmissionController::new(
            AdmissionPolicy::Adaptive { min_iterations: 1 },
            &t,
            &ThroughputModel::paper(&ST_0_13_UM),
        );
        let base = ctl.base_cap(0);
        let shed = ctl.cap_for(0, 0.95);
        assert!(shed <= base / 2 + 1, "base {base}, shed {shed}");
        assert!(shed >= base / 3, "base {base}, shed {shed}");
    }
}
