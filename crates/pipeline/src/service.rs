//! The streaming decode service: ingress queue → worker pool → in-order
//! egress, with backpressure and iteration-budget admission control.
//!
//! ```text
//!  try_submit/submit          workers (N)                 next_decoded
//!  ───────────────▶ ingress ═════════════▶ reorder ═▶ egress ───────────▶
//!    (seq assigned)  bounded   decode_into   BTreeMap    bounded, in seq
//! ```
//!
//! Design points, each load-bearing:
//!
//! * **Sequence numbers are claimed only when the ingress push succeeds** —
//!   a rejected frame burns no sequence number, so the reorder buffer
//!   never waits for a frame that does not exist.
//! * **Backpressure is explicit.** [`DecodePipeline::try_submit`] hands the
//!   frame back in [`SubmitError::Rejected`]; nothing is silently dropped.
//!   An in-flight cap bounds total memory across all stages.
//! * **Admission control sheds iterations before frames.** Under ingress
//!   pressure the per-frame iteration cap steps down the
//!   [`AdmissionController`] ladder (paper Table 3 run backwards) before
//!   the queue ever rejects.
//! * **Workers decode batches sized by early-termination behavior**: when
//!   frames stop early (cheap), a worker grabs larger batches to amortize
//!   queue traffic; when frames run to the cap (expensive), batches shrink
//!   to keep latency and reorder depth down.
//! * **Egress is in order.** Workers insert into a reorder buffer; whoever
//!   completes the next-expected sequence drains the run to the egress
//!   queue. A consumer sees frames in exact submission order.

use crate::admission::{AdmissionController, AdmissionPolicy};
use crate::health::{QuarantinePolicy, WorkerFaultInjection, WorkerHealth};
use crate::queue::BoundedQueue;
use crate::stats::{PipelineStats, StatsCore};
use dvbs2::{ModcodEntry, ModcodTable};
use dvbs2_channel::LlrFrame;
use dvbs2_decoder::{syndrome_weight, DecodeResult, Decoder, TiledBatchDecoder};
use dvbs2_hardware::{ThroughputModel, ST_0_13_UM};
use dvbs2_ldpc::BitVec;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One frame of demapped soft bits entering the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftFrame {
    /// MODCOD slot into the pipeline's [`ModcodTable`].
    pub modcod: usize,
    /// Caller's stream position (carried through, not interpreted).
    pub stream_index: u64,
    /// Channel LLRs, length `N` of the slot's code.
    pub llrs: Vec<f64>,
}

impl From<LlrFrame> for SoftFrame {
    fn from(frame: LlrFrame) -> Self {
        SoftFrame {
            modcod: frame.tag.modcod,
            stream_index: frame.tag.stream_index,
            llrs: frame.llrs,
        }
    }
}

/// One decoded frame leaving the pipeline, in submission order.
///
/// Equality compares the decoded payload and metadata but **not** the
/// timestamps, so two decodes of the same frame on different pipelines
/// compare equal (the property shard-invariance tests rely on).
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    /// Pipeline sequence number (0-based submission order, gap-free).
    pub seq: u64,
    /// The submitter's stream position, carried through.
    pub stream_index: u64,
    /// MODCOD slot the frame decoded under.
    pub modcod: usize,
    /// Hard decisions for the full codeword (`N` bits).
    pub bits: BitVec,
    /// Information length `K` of the slot's code.
    pub info_len: usize,
    /// Iterations the decoder spent.
    pub iterations: usize,
    /// Whether the decoder converged to a codeword.
    pub converged: bool,
    /// The iteration cap this frame actually ran under (lower than the
    /// slot's configured cap when admission control shed load).
    pub iteration_cap: usize,
    /// When the frame entered the ingress queue (sequence claimed).
    pub accepted_at: Instant,
    /// When the frame was handed to the egress queue in order.
    pub emitted_at: Instant,
}

impl PartialEq for DecodedFrame {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
            && self.stream_index == other.stream_index
            && self.modcod == other.modcod
            && self.bits == other.bits
            && self.info_len == other.info_len
            && self.iterations == other.iterations
            && self.converged == other.converged
            && self.iteration_cap == other.iteration_cap
    }
}

impl Eq for DecodedFrame {}

impl DecodedFrame {
    /// The decoded BBFRAME: the systematic (information) prefix of the
    /// codeword, which is what the outer BCH layer consumes.
    pub fn bbframe(&self) -> BitVec {
        (0..self.info_len).map(|i| self.bits.get(i)).collect()
    }

    /// End-to-end pipeline residence time: ingress admission to in-order
    /// egress.
    pub fn latency(&self) -> Duration {
        self.emitted_at.saturating_duration_since(self.accepted_at)
    }
}

/// A point-in-time view of the worker fleet's health, exported so a
/// multi-shard service tier can route traffic away from degraded shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineHealth {
    /// Workers the pipeline was started with.
    pub workers: usize,
    /// Workers currently out of rotation in syndrome-anomaly quarantine.
    pub quarantined_now: usize,
    /// Cumulative fault suspicions raised by the anomaly detector.
    pub faults_suspected: u64,
    /// Cumulative reinstatements after known-answer probes passed.
    pub reinstatements: u64,
}

impl PipelineHealth {
    /// Whether any worker is currently quarantined — the signal a service
    /// tier uses to migrate streams off this shard.
    pub fn degraded(&self) -> bool {
        self.quarantined_now > 0
    }

    /// Workers currently in rotation: started minus quarantined. The
    /// quarantine gate never takes the last worker, so this only reaches
    /// zero if the pipeline was somehow started with none.
    pub fn healthy_workers(&self) -> usize {
        self.workers.saturating_sub(self.quarantined_now)
    }
}

/// Why a submission did not enter the pipeline. Every variant returns the
/// frame so the caller can retry, requeue or count it.
#[derive(Debug, PartialEq)]
pub enum SubmitError {
    /// Backpressure: the ingress queue or the in-flight budget is full.
    Rejected(SoftFrame),
    /// The frame's MODCOD slot is not in the table.
    UnknownModcod(SoftFrame),
    /// The frame's LLR length does not match its slot's codeword length.
    WrongLength {
        /// The rejected frame.
        frame: SoftFrame,
        /// The slot's expected codeword length.
        expected: usize,
    },
    /// The pipeline is shutting down.
    ShutDown(SoftFrame),
}

impl SubmitError {
    /// Recovers the frame from any variant.
    pub fn into_frame(self) -> SoftFrame {
        match self {
            SubmitError::Rejected(f) | SubmitError::UnknownModcod(f) | SubmitError::ShutDown(f) => {
                f
            }
            SubmitError::WrongLength { frame, .. } => frame,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker threads decoding frames.
    pub workers: usize,
    /// Ingress queue capacity (frames).
    pub ingress_capacity: usize,
    /// Egress queue capacity (frames).
    pub egress_capacity: usize,
    /// Total frames allowed inside the pipeline at once (ingress + in
    /// decode + reorder + egress). Bounds memory end to end.
    pub max_in_flight: usize,
    /// Load-shedding policy.
    pub admission: AdmissionPolicy,
    /// Hardware model the admission ladder is computed against.
    pub throughput_model: ThroughputModel,
    /// Smallest worker batch.
    pub min_batch: usize,
    /// Largest worker batch.
    pub max_batch: usize,
    /// Emit a stats log line every this many emitted frames (0 = never).
    pub log_every: u64,
    /// Syndrome-anomaly quarantine policy (disabled by default).
    pub quarantine: QuarantinePolicy,
    /// Test/bench hook: deterministically corrupt one worker's input
    /// datapath (see [`WorkerFaultInjection`]). `None` in production.
    pub fault_injection: Option<WorkerFaultInjection>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: dvbs2_channel::default_threads(),
            ingress_capacity: 64,
            egress_capacity: 64,
            max_in_flight: 160,
            admission: AdmissionPolicy::Off,
            throughput_model: ThroughputModel::paper(&ST_0_13_UM),
            min_batch: 1,
            max_batch: 8,
            log_every: 0,
            quarantine: QuarantinePolicy::default(),
            fault_injection: None,
        }
    }
}

struct WorkItem {
    seq: u64,
    accepted_at: Instant,
    frame: SoftFrame,
}

#[derive(Default)]
struct Reorder {
    next_emit: u64,
    pending: BTreeMap<u64, DecodedFrame>,
}

struct SubmitState {
    next_seq: u64,
}

struct Shared {
    table: ModcodTable,
    config: PipelineConfig,
    stats: StatsCore,
    admission: AdmissionController,
    ingress: BoundedQueue<WorkItem>,
    egress: BoundedQueue<DecodedFrame>,
    reorder: Mutex<Reorder>,
    submit: Mutex<SubmitState>,
    /// Signalled whenever pipeline space frees (ingress pop or egress
    /// consumption) or shutdown starts; blocking submitters wait here.
    space: Condvar,
    shutting_down: AtomicBool,
    active_workers: AtomicUsize,
}

/// The streaming decode service. See the module docs for the stage graph.
pub struct DecodePipeline {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DecodePipeline {
    /// Starts the worker pool over a MODCOD dispatch table.
    ///
    /// # Panics
    ///
    /// Panics on a configuration that cannot run: zero workers, an empty
    /// table, a zero batch, or `min_batch > max_batch`.
    pub fn start(table: ModcodTable, config: PipelineConfig) -> Self {
        assert!(config.workers > 0, "the pipeline needs at least one worker");
        assert!(!table.is_empty(), "the MODCOD table must define at least one slot");
        assert!(
            config.min_batch >= 1 && config.min_batch <= config.max_batch,
            "batch bounds must satisfy 1 <= min <= max"
        );
        assert!(config.max_in_flight >= 1, "the in-flight budget must admit a frame");
        let admission =
            AdmissionController::new(config.admission, &table, &config.throughput_model);
        let shared = Arc::new(Shared {
            admission,
            stats: StatsCore::default(),
            ingress: BoundedQueue::new(config.ingress_capacity),
            egress: BoundedQueue::new(config.egress_capacity),
            reorder: Mutex::new(Reorder::default()),
            submit: Mutex::new(SubmitState { next_seq: 0 }),
            space: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active_workers: AtomicUsize::new(config.workers),
            table,
            config,
        });
        let workers = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("decode-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning a decode worker")
            })
            .collect();
        DecodePipeline { shared, workers }
    }

    fn validate(&self, frame: SoftFrame) -> Result<SoftFrame, SubmitError> {
        let Some(entry) = self.shared.table.lookup(frame.modcod) else {
            return Err(SubmitError::UnknownModcod(frame));
        };
        let expected = entry.frame_len();
        if frame.llrs.len() != expected {
            return Err(SubmitError::WrongLength { frame, expected });
        }
        Ok(frame)
    }

    /// Offers a frame without blocking. On success the frame's sequence
    /// number (its position in the egress order) is returned; on
    /// backpressure the frame comes back in [`SubmitError::Rejected`].
    pub fn try_submit(&self, frame: SoftFrame) -> Result<u64, SubmitError> {
        let shared = &*self.shared;
        let frame = self.validate(frame)?;
        shared.stats.offered.fetch_add(1, Ordering::Relaxed);
        if shared.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown(frame));
        }
        let mut sub = shared.submit.lock().expect("no panics hold the submit lock");
        if shared.stats.in_flight.load(Ordering::Relaxed) >= shared.config.max_in_flight {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected(frame));
        }
        let item = WorkItem { seq: sub.next_seq, accepted_at: Instant::now(), frame };
        match shared.ingress.try_push(item) {
            Ok(()) => {
                let seq = sub.next_seq;
                sub.next_seq += 1;
                shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
                shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                StatsCore::raise_watermark(&shared.stats.ingress_watermark, shared.ingress.len());
                Ok(seq)
            }
            Err(item) => {
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Rejected(item.frame))
            }
        }
    }

    /// Submits a frame, blocking while the pipeline is full. Fails only
    /// with [`SubmitError::ShutDown`] (or a validation error).
    pub fn submit(&self, frame: SoftFrame) -> Result<u64, SubmitError> {
        let shared = &*self.shared;
        let mut frame = self.validate(frame)?;
        shared.stats.offered.fetch_add(1, Ordering::Relaxed);
        let mut sub = shared.submit.lock().expect("no panics hold the submit lock");
        loop {
            if shared.shutting_down.load(Ordering::Acquire) {
                return Err(SubmitError::ShutDown(frame));
            }
            if shared.stats.in_flight.load(Ordering::Relaxed) < shared.config.max_in_flight {
                let item = WorkItem { seq: sub.next_seq, accepted_at: Instant::now(), frame };
                match shared.ingress.try_push(item) {
                    Ok(()) => {
                        let seq = sub.next_seq;
                        sub.next_seq += 1;
                        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
                        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                        StatsCore::raise_watermark(
                            &shared.stats.ingress_watermark,
                            shared.ingress.len(),
                        );
                        return Ok(seq);
                    }
                    Err(item) => frame = item.frame,
                }
            }
            // The timeout guards against missed wakeups; correctness does
            // not depend on it.
            let (guard, _) = shared
                .space
                .wait_timeout(sub, Duration::from_millis(10))
                .expect("no panics hold the submit lock");
            sub = guard;
        }
    }

    /// The next decoded frame in submission order, blocking until one is
    /// ready. Returns `None` once the pipeline has shut down and every
    /// frame has been consumed.
    pub fn next_decoded(&self) -> Option<DecodedFrame> {
        let frame = self.shared.egress.pop()?;
        self.shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.shared.space.notify_all();
        Some(frame)
    }

    /// The next decoded frame if one is ready right now.
    pub fn try_next_decoded(&self) -> Option<DecodedFrame> {
        let frame = self.shared.egress.try_pop()?;
        self.shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.shared.space.notify_all();
        Some(frame)
    }

    /// A consistent-at-quiescence snapshot of the pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        self.shared.stats.snapshot()
    }

    /// The current worker-fleet health, for shard-level routing decisions.
    pub fn health(&self) -> PipelineHealth {
        let stats = &self.shared.stats;
        PipelineHealth {
            workers: self.shared.config.workers,
            quarantined_now: stats.quarantined_now.load(Ordering::Relaxed),
            faults_suspected: stats.faults_suspected.load(Ordering::Relaxed),
            reinstatements: stats.reinstatements.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new frames without joining the workers: already
    /// admitted frames keep decoding and draining to egress. Used by a
    /// service tier to drain a shard before retiring it — call
    /// [`DecodePipeline::finish`] (or drop) afterwards to join.
    pub fn close_ingress(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.ingress.close();
        self.shared.space.notify_all();
    }

    /// The dispatch table the pipeline serves.
    pub fn table(&self) -> &ModcodTable {
        &self.shared.table
    }

    /// The configuration the pipeline was started with.
    pub fn config(&self) -> &PipelineConfig {
        &self.shared.config
    }

    /// Frames currently inside the pipeline (ingress + decode + reorder +
    /// egress). A single atomic load — cheap enough for per-frame routing
    /// and SLA decisions in a front-end tier.
    pub fn in_flight(&self) -> usize {
        self.shared.stats.in_flight.load(Ordering::Relaxed)
    }

    /// Stops accepting frames, decodes everything already admitted, joins
    /// the workers and returns the final counters. Frames still in the
    /// egress queue remain consumable via [`DecodePipeline::next_decoded`]
    /// until it reports `None`.
    ///
    /// A consumer must keep draining egress while `finish` runs (or the
    /// egress queue must be large enough for the admitted residue):
    /// workers block pushing to a full egress queue.
    pub fn finish(mut self) -> PipelineStats {
        self.shutdown();
        self.shared.stats.snapshot()
    }

    fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.ingress.close();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DecodePipeline {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decodes batches until the ingress queue closes and drains; the last
/// worker out accounts stuck frames and closes egress.
///
/// When the quarantine policy is enabled the worker also runs the
/// syndrome-anomaly detector over its own decodes and takes itself out of
/// rotation (stops consuming ingress; traffic implicitly re-routes to the
/// other workers) when its statistics look like a hardware fault rather
/// than a hard channel. Quarantine begins only on a batch boundary, after
/// every grabbed frame has been emitted — no frame is dropped or
/// reordered by the transition.
fn worker_loop(shared: &Shared, worker: usize) {
    let policy = shared.config.quarantine;
    let injection = shared.config.fault_injection;
    let mut health = WorkerHealth::new();
    // Frames *and* probes this worker has decoded — the clock the fault
    // injection window is defined over.
    let mut decode_count: u64 = 0;
    // The slot this worker most recently served: the known-answer probes
    // run against it while quarantined.
    let mut last_served: Option<(usize, Arc<ModcodEntry>)> = None;
    let mut decoders: HashMap<usize, Box<dyn Decoder + Send>> = HashMap::new();
    // Batched decoders are probed lazily per slot; `None` is cached too, so
    // unbatchable slots pay the profile check once, not per batch. The tiled
    // decoder stays single-threaded here — the pipeline's parallelism axis
    // is its own worker pool, one `worker_loop` per thread.
    let mut batch_decoders: HashMap<usize, Option<TiledBatchDecoder>> = HashMap::new();
    let mut scratch = DecodeResult::default();
    let mut results: Vec<DecodeResult> = Vec::new();
    let mut batch: Vec<WorkItem> = Vec::new();
    let mut batch_size = shared.config.min_batch;

    while let Some(first) = shared.ingress.pop() {
        batch.push(first);
        while batch.len() < batch_size {
            match shared.ingress.try_pop() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        shared.space.notify_all();

        for item in &mut batch {
            if let Some(inj) = injection {
                if inj.corrupts(worker, decode_count) {
                    WorkerFaultInjection::corrupt_llrs(&mut item.frame.llrs);
                }
            }
            decode_count += 1;
        }

        let mut iterations_spent = 0usize;
        let mut cap_budget = 0usize;
        // Split the grabbed batch into runs of consecutive same-slot frames.
        // A run of two or more on a batchable slot decodes in one fused
        // multi-frame pass (bit-identical per frame to the single-frame
        // decoder, so consumers cannot tell which path ran); everything
        // else takes the per-frame path.
        let mut start = 0;
        while start < batch.len() {
            let slot = batch[start].frame.modcod;
            let mut end = start + 1;
            while end < batch.len() && batch[end].frame.modcod == slot {
                end += 1;
            }
            // Defensive dispatch: submission validates slots against the
            // table, so an undefined slot here means the item was corrupted
            // in flight. Panicking would strand this worker's sequence
            // numbers and hang the reorder stage for every consumer —
            // instead emit non-converged placeholders so egress stays
            // gap-free and in order.
            let Some(entry) = shared.table.lookup(slot) else {
                for item in &batch[start..end] {
                    shared.stats.record_decode(0, false, false, 0);
                    let n = item.frame.llrs.len();
                    let decoded = DecodedFrame {
                        seq: item.seq,
                        stream_index: item.frame.stream_index,
                        modcod: slot,
                        bits: (0..n).map(|_| false).collect(),
                        info_len: 0,
                        iterations: 0,
                        converged: false,
                        iteration_cap: 0,
                        accepted_at: item.accepted_at,
                        emitted_at: item.accepted_at,
                    };
                    emit_in_order(shared, decoded);
                }
                start = end;
                continue;
            };
            last_served = Some((slot, Arc::clone(entry)));
            let batched = if end - start >= 2 {
                batch_decoders
                    .entry(slot)
                    .or_insert_with(|| entry.make_batch_decoder(shared.config.max_batch.min(1024)))
                    .as_mut()
            } else {
                None
            };
            if let Some(decoder) = batched {
                // One admission decision per run: every frame in the run
                // decodes under the same cap, sampled at run start.
                let occupancy = shared.ingress.len() as f64 / shared.ingress.capacity() as f64;
                let cap = shared.admission.cap_for(slot, occupancy);
                let base_cap = shared.admission.base_cap(slot);
                decoder.set_max_iterations(cap);
                // `chunks` only matters if the configured batch exceeds the
                // decoder's 1024-lane ceiling; normally one chunk = the run.
                for run in batch[start..end].chunks(decoder.max_batch()) {
                    let llrs: Vec<&[f64]> = run.iter().map(|it| it.frame.llrs.as_slice()).collect();
                    results.resize(run.len(), DecodeResult::default());
                    let started = Instant::now();
                    decoder.decode_batch_into(&llrs, &mut results[..run.len()]);
                    let ns = started.elapsed().as_nanos() as u64 / run.len() as u64;
                    for (item, out) in run.iter().zip(&results) {
                        let early = out.converged && out.iterations < cap;
                        shared.stats.record_decode(out.iterations, early, cap < base_cap, ns);
                        if policy.enabled {
                            health.observe(&policy, out.converged, residual_fraction(entry, out));
                        }
                        iterations_spent += out.iterations;
                        cap_budget += cap;
                        let decoded = DecodedFrame {
                            seq: item.seq,
                            stream_index: item.frame.stream_index,
                            modcod: slot,
                            bits: out.bits.clone(),
                            info_len: entry.info_len(),
                            iterations: out.iterations,
                            converged: out.converged,
                            iteration_cap: cap,
                            accepted_at: item.accepted_at,
                            emitted_at: item.accepted_at,
                        };
                        emit_in_order(shared, decoded);
                    }
                }
            } else {
                for item in &batch[start..end] {
                    let decoder = decoders.entry(slot).or_insert_with(|| entry.make_decoder());
                    let occupancy = shared.ingress.len() as f64 / shared.ingress.capacity() as f64;
                    let cap = shared.admission.cap_for(slot, occupancy);
                    let base_cap = shared.admission.base_cap(slot);
                    decoder.set_max_iterations(cap);
                    let started = Instant::now();
                    decoder.decode_into(&item.frame.llrs, &mut scratch);
                    let ns = started.elapsed().as_nanos() as u64;
                    let early = scratch.converged && scratch.iterations < cap;
                    shared.stats.record_decode(scratch.iterations, early, cap < base_cap, ns);
                    if policy.enabled {
                        health.observe(
                            &policy,
                            scratch.converged,
                            residual_fraction(entry, &scratch),
                        );
                    }
                    iterations_spent += scratch.iterations;
                    cap_budget += cap;

                    let decoded = DecodedFrame {
                        seq: item.seq,
                        stream_index: item.frame.stream_index,
                        modcod: slot,
                        bits: scratch.bits.clone(),
                        info_len: entry.info_len(),
                        iterations: scratch.iterations,
                        converged: scratch.converged,
                        iteration_cap: cap,
                        accepted_at: item.accepted_at,
                        emitted_at: item.accepted_at,
                    };
                    emit_in_order(shared, decoded);
                }
            }
            start = end;
        }
        batch.clear();

        // Early-termination-aware batch sizing: when decodes finish well
        // under their cap (early stops), frames are cheap — take bigger
        // batches; when they run the budget out, shrink to keep the
        // reorder window and latency small.
        batch_size = if iterations_spent * 2 < cap_budget {
            (batch_size * 2).min(shared.config.max_batch)
        } else {
            (batch_size / 2).max(shared.config.min_batch)
        };

        // Every grabbed frame has been emitted, so quarantining here drops
        // and reorders nothing: this worker simply stops consuming ingress
        // and the others absorb the traffic.
        if policy.enabled && health.suspect(&policy) {
            shared.stats.faults_suspected.fetch_add(1, Ordering::Relaxed);
            if try_enter_quarantine(shared) {
                let served = last_served.as_ref().expect("suspicion requires prior decodes");
                let reinstated =
                    quarantine(shared, worker, served, &mut decoders, &mut decode_count);
                health.reset();
                if !reinstated {
                    // Shutdown arrived while quarantined; fall through to
                    // the normal worker-exit accounting.
                    break;
                }
            } else {
                // This is the last healthy worker: degraded service beats
                // no service, so keep decoding and make the verdict
                // re-accumulate from fresh evidence instead of firing on
                // every batch.
                health.reset();
            }
        }
    }

    if shared.active_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last worker out: anything still in the reorder buffer is
        // unreachable (a gap means a frame never completed) — account it
        // as dropped rather than hanging the consumer.
        let mut reorder = shared.reorder.lock().expect("no panics hold the reorder lock");
        let stuck = reorder.pending.len() as u64;
        if stuck > 0 {
            shared.stats.dropped.fetch_add(stuck, Ordering::Relaxed);
            reorder.pending.clear();
        }
        drop(reorder);
        shared.egress.close();
    }
}

/// The fraction of unsatisfied check equations left in a finished decode —
/// the second axis of the fault signature. A converged frame satisfies
/// every check by definition, so the syndrome is only counted on failures.
fn residual_fraction(entry: &ModcodEntry, out: &DecodeResult) -> f64 {
    if out.converged {
        0.0
    } else {
        let graph = entry.system().graph();
        syndrome_weight(graph, &out.bits) as f64 / graph.check_count() as f64
    }
}

/// Atomically claims a quarantine slot, unless doing so would leave fewer
/// than one healthy worker (a fleet must never quarantine itself whole).
fn try_enter_quarantine(shared: &Shared) -> bool {
    let quarantined = &shared.stats.quarantined_now;
    loop {
        let current = quarantined.load(Ordering::Relaxed);
        if shared.config.workers - current <= 1 {
            return false;
        }
        if quarantined
            .compare_exchange(current, current + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
    }
}

/// The quarantine loop: out of rotation, re-probe with a known-answer test
/// vector until [`QuarantinePolicy::probe_passes`] consecutive passes
/// reinstate the worker. The known answer is the all-zero codeword received
/// strongly — every slot's decoder converges on it in one iteration when
/// healthy, and a corrupted datapath cannot fake all three of convergence,
/// the all-zero word and the probe cadence. Returns `false` if shutdown
/// arrived first (the worker then exits still quarantined).
///
/// Probes advance the worker's decode counter through the same fault
/// injection hook as real frames, so a windowed (transient) fault heals
/// under probing and a permanent one keeps failing — exactly the
/// transient/hard distinction the detector exists to draw.
fn quarantine(
    shared: &Shared,
    worker: usize,
    served: &(usize, Arc<ModcodEntry>),
    decoders: &mut HashMap<usize, Box<dyn Decoder + Send>>,
    decode_count: &mut u64,
) -> bool {
    let policy = shared.config.quarantine;
    shared.stats.quarantines.fetch_add(1, Ordering::Relaxed);
    let (slot, entry) = served;
    let n = entry.frame_len();
    let decoder = decoders.entry(*slot).or_insert_with(|| entry.make_decoder());
    decoder.set_max_iterations(shared.admission.base_cap(*slot));
    let mut probe = DecodeResult::default();
    let mut consecutive_passes = 0u32;
    while !shared.shutting_down.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(policy.probe_interval_ms));
        shared.stats.probes_run.fetch_add(1, Ordering::Relaxed);
        let mut llrs = vec![6.0f64; n];
        if let Some(inj) = shared.config.fault_injection {
            if inj.corrupts(worker, *decode_count) {
                WorkerFaultInjection::corrupt_llrs(&mut llrs);
            }
        }
        *decode_count += 1;
        // Probes are not frames: they bypass ingress/egress and the decode
        // counters, so pipeline invariants (submitted == emitted + dropped)
        // are untouched by however long quarantine lasts.
        decoder.decode_into(&llrs, &mut probe);
        if probe.converged && (0..n).all(|i| !probe.bits.get(i)) {
            consecutive_passes += 1;
            if consecutive_passes >= policy.probe_passes {
                shared.stats.reinstatements.fetch_add(1, Ordering::Relaxed);
                shared.stats.quarantined_now.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
        } else {
            consecutive_passes = 0;
            shared.stats.probes_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    false
}

/// Inserts a decoded frame and drains the in-order run to egress.
fn emit_in_order(shared: &Shared, decoded: DecodedFrame) {
    let mut reorder = shared.reorder.lock().expect("no panics hold the reorder lock");
    reorder.pending.insert(decoded.seq, decoded);
    StatsCore::raise_watermark(&shared.stats.reorder_watermark, reorder.pending.len());
    while let Some(mut frame) = {
        let next = reorder.next_emit;
        reorder.pending.remove(&next)
    } {
        reorder.next_emit += 1;
        frame.emitted_at = Instant::now();
        shared.stats.record_latency(frame.latency().as_nanos() as u64);
        // Blocking push while holding the reorder lock is safe: the
        // consumer side never takes this lock, so egress keeps draining.
        // Other workers queue behind the lock, which is exactly the
        // backpressure we want when egress is full.
        if shared.egress.push(frame).is_err() {
            shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let emitted = shared.stats.emitted.fetch_add(1, Ordering::Relaxed) + 1;
        let every = shared.config.log_every;
        if every > 0 && emitted.is_multiple_of(every) {
            eprintln!("{}", shared.stats.snapshot().log_line());
        }
    }
}
