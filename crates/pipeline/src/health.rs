//! Syndrome-anomaly detection and worker quarantine.
//!
//! A worker whose datapath develops a fault (the hardware crate's
//! `FaultScenario` models the mechanisms: stuck RAM words, flipped write
//! paths, stuck FU lanes) does not crash — it keeps emitting frames whose
//! decode statistics are wrong in a characteristic way: convergence
//! collapses and the residual syndrome weight of non-converged frames jumps
//! far above what channel noise produces. This module turns that signature
//! into a containment mechanism:
//!
//! * [`WorkerHealth`] — per-worker EWMAs of the non-convergence rate and
//!   the residual syndrome-weight fraction, updated after every decode;
//! * [`QuarantinePolicy`] — thresholds that turn the EWMAs into a
//!   *suspect* verdict, plus the known-answer re-probe cadence;
//! * [`WorkerFaultInjection`] — a deterministic test hook that makes one
//!   worker's input datapath faulty for a window of its decodes, so the
//!   whole detect → quarantine → re-probe → reinstate arc is testable
//!   without real broken silicon.
//!
//! A suspect worker quarantines *itself*: it stops consuming the shared
//! ingress queue (traffic implicitly re-routes to the healthy workers — no
//! frame is dropped or reordered, because quarantine only begins on a batch
//! boundary after every grabbed frame has been emitted) and re-probes with
//! a known-answer test vector — a strongly-received all-zero codeword that
//! any healthy decoder converges on — until [`QuarantinePolicy::probe_passes`]
//! consecutive passes reinstate it. A worker never quarantines itself when
//! it is the last healthy worker; degraded service beats no service.

/// When and how workers quarantine themselves. Disabled by default: the
/// detector costs a syndrome count per non-converged frame, and deployments
/// without a fault model should not pay for (or be surprised by) workers
/// taking themselves out of rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Master switch; `false` keeps every worker in rotation forever.
    pub enabled: bool,
    /// EWMA smoothing factor in `(0, 1]` — the weight of the newest
    /// observation. Higher reacts faster but is noisier.
    pub alpha: f64,
    /// A worker is suspect only if its non-convergence EWMA exceeds this.
    pub nonconv_threshold: f64,
    /// ... and its residual syndrome-weight-fraction EWMA exceeds this.
    /// Channel noise leaves a near-codeword residue (a small fraction of
    /// checks unsatisfied); a corrupted datapath leaves a large one — this
    /// threshold is what separates "hard channel" from "broken worker".
    pub syndrome_threshold: f64,
    /// Decodes a worker must have observed before it can be flagged
    /// (warm-up; an EWMA over two frames means nothing).
    pub min_decodes: u64,
    /// Consecutive known-answer probe passes required to reinstate a
    /// quarantined worker.
    pub probe_passes: u32,
    /// Milliseconds between probe attempts while quarantined.
    pub probe_interval_ms: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            enabled: false,
            alpha: 0.25,
            nonconv_threshold: 0.7,
            syndrome_threshold: 0.02,
            min_decodes: 8,
            probe_passes: 3,
            probe_interval_ms: 2,
        }
    }
}

impl QuarantinePolicy {
    /// The default thresholds with the detector switched on.
    pub fn enabled() -> Self {
        QuarantinePolicy { enabled: true, ..QuarantinePolicy::default() }
    }
}

/// Per-worker decode-health state: EWMAs of the two fault signatures.
#[derive(Debug, Clone, Default)]
pub struct WorkerHealth {
    nonconv_ewma: f64,
    syndrome_ewma: f64,
    observed: u64,
}

impl WorkerHealth {
    /// Fresh (healthy) state.
    pub fn new() -> Self {
        WorkerHealth::default()
    }

    /// Records one finished decode. `syndrome_fraction` is the fraction of
    /// unsatisfied check equations in the emitted word (`0.0` for a
    /// converged frame by definition).
    pub fn observe(&mut self, policy: &QuarantinePolicy, converged: bool, syndrome_fraction: f64) {
        let a = policy.alpha;
        self.nonconv_ewma = (1.0 - a) * self.nonconv_ewma + a * f64::from(u8::from(!converged));
        self.syndrome_ewma = (1.0 - a) * self.syndrome_ewma + a * syndrome_fraction;
        self.observed += 1;
    }

    /// Whether the observed statistics look like a faulty datapath rather
    /// than a hard channel: both EWMAs past threshold, after warm-up.
    pub fn suspect(&self, policy: &QuarantinePolicy) -> bool {
        self.observed >= policy.min_decodes
            && self.nonconv_ewma > policy.nonconv_threshold
            && self.syndrome_ewma > policy.syndrome_threshold
    }

    /// Clears the state (after reinstatement, or after a suppressed
    /// quarantine, so the verdict re-accumulates from fresh evidence).
    pub fn reset(&mut self) {
        *self = WorkerHealth::default();
    }

    /// Current non-convergence EWMA.
    pub fn nonconv_ewma(&self) -> f64 {
        self.nonconv_ewma
    }

    /// Current residual syndrome-weight-fraction EWMA.
    pub fn syndrome_ewma(&self) -> f64 {
        self.syndrome_ewma
    }
}

/// Deterministic fault injection for one pipeline worker: while the
/// worker's decode counter (frames *and* probes) lies in
/// `[from_decode, until_decode)`, every input frame it processes is
/// replaced with a fixed garbage pattern before decoding — modeling a
/// corrupted input bus. Probes count too, so a window models a transient
/// fault the re-probe eventually clears, while `until_decode == u64::MAX`
/// models a hard fault the worker never recovers from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFaultInjection {
    /// Index of the faulted worker (`0..config.workers`).
    pub worker: usize,
    /// First corrupted decode.
    pub from_decode: u64,
    /// One past the last corrupted decode.
    pub until_decode: u64,
}

impl WorkerFaultInjection {
    /// A fault that never heals.
    pub fn permanent(worker: usize) -> Self {
        WorkerFaultInjection { worker, from_decode: 0, until_decode: u64::MAX }
    }

    /// A transient fault over a half-open decode window.
    pub fn window(worker: usize, from_decode: u64, until_decode: u64) -> Self {
        WorkerFaultInjection { worker, from_decode, until_decode }
    }

    /// Whether decode number `decode_index` on worker `worker` is corrupted.
    pub fn corrupts(&self, worker: usize, decode_index: u64) -> bool {
        worker == self.worker
            && self.from_decode <= decode_index
            && decode_index < self.until_decode
    }

    /// The corruption itself: a strong alternating-sign pattern, i.e. a
    /// confidently-received word maximally far from the submitted frame.
    /// Deterministic, so faulted decodes stay reproducible.
    pub fn corrupt_llrs(llrs: &mut [f64]) {
        for (i, llr) in llrs.iter_mut().enumerate() {
            *llr = if i % 2 == 0 { 6.0 } else { -6.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_flags_only_the_fault_signature() {
        let policy = QuarantinePolicy {
            enabled: true,
            alpha: 0.5,
            min_decodes: 4,
            ..QuarantinePolicy::default()
        };
        // Healthy traffic: converged frames never raise a verdict.
        let mut healthy = WorkerHealth::new();
        for _ in 0..50 {
            healthy.observe(&policy, true, 0.0);
        }
        assert!(!healthy.suspect(&policy));
        // Hard channel: frequent non-convergence with a *small* residue
        // (near-codeword) must not be flagged as a hardware fault.
        let mut hard_channel = WorkerHealth::new();
        for _ in 0..50 {
            hard_channel.observe(&policy, false, 0.005);
        }
        assert!(!hard_channel.suspect(&policy));
        // Broken worker: non-convergence with a large residue is flagged,
        // but not before the warm-up window.
        let mut broken = WorkerHealth::new();
        for i in 0..50u64 {
            broken.observe(&policy, false, 0.4);
            assert_eq!(broken.suspect(&policy), i + 1 >= policy.min_decodes, "decode {i}");
        }
        broken.reset();
        assert!(!broken.suspect(&policy), "reset clears the verdict");
    }

    #[test]
    fn injection_window_is_half_open_and_worker_scoped() {
        let fault = WorkerFaultInjection::window(2, 3, 6);
        assert!(!fault.corrupts(2, 2));
        assert!(fault.corrupts(2, 3));
        assert!(fault.corrupts(2, 5));
        assert!(!fault.corrupts(2, 6));
        assert!(!fault.corrupts(1, 4), "other workers are untouched");
        assert!(WorkerFaultInjection::permanent(0).corrupts(0, u64::MAX - 1));
        let mut llrs = vec![0.0; 4];
        WorkerFaultInjection::corrupt_llrs(&mut llrs);
        assert_eq!(llrs, vec![6.0, -6.0, 6.0, -6.0]);
    }
}
