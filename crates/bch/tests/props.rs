//! Property tests for the BCH substrate.

use dvbs2_bch::{BchCode, BchDecoder, BchEncoder, GaloisField};
use dvbs2_ldpc::{BitVec, CodeRate, FrameSize};
use proptest::prelude::*;
use rand::seq::index::sample;
use rand::{rngs::SmallRng, SeedableRng};

fn short_code() -> (BchEncoder, BchDecoder) {
    let code = BchCode::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    (BchEncoder::new(code.clone()), BchDecoder::new(code))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any error pattern of weight <= t is corrected exactly.
    #[test]
    fn corrects_any_pattern_up_to_t(seed in any::<u64>(), errors in 0usize..=12) {
        let (enc, dec) = short_code();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let mut corrupted = cw.clone();
        for idx in sample(&mut rng, cw.len(), errors) {
            corrupted.toggle(idx);
        }
        let out = dec.decode(&corrupted).unwrap();
        prop_assert_eq!(out.corrected, errors);
        prop_assert_eq!(out.codeword, cw);
    }

    /// Syndromes of encoder outputs are identically zero.
    #[test]
    fn codeword_syndromes_vanish(seed in any::<u64>()) {
        let (enc, dec) = short_code();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        prop_assert!(dec.syndromes(&cw).iter().all(|&s| s == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Field laws hold on random elements of the big DVB-S2 fields.
    #[test]
    fn gf14_field_laws(a in 1u16..16_383, b in 1u16..16_383, c in 0u16..16_383) {
        let f = GaloisField::gf2_14();
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        prop_assert_eq!(f.div(f.mul(a, b), b), a);
        // Frobenius: squaring is additive in characteristic 2.
        prop_assert_eq!(f.pow(f.add(b, c), 2), f.add(f.pow(b, 2), f.pow(c, 2)));
    }

    /// log/exp are inverse bijections.
    #[test]
    fn gf16_log_exp_round_trip(a in 1u16..=65_534) {
        let f = GaloisField::gf2_16();
        prop_assert_eq!(f.alpha_pow(f.log(a)), a);
    }
}

#[test]
fn all_zero_received_word_is_a_codeword() {
    let (_, dec) = short_code();
    let out = dec.decode(&BitVec::zeros(dec.code().params().n)).unwrap();
    assert_eq!(out.corrected, 0);
}
