//! Algebraic BCH decoding: syndromes → Berlekamp–Massey → Chien search.
//!
//! This is the hard-decision outer decoder that follows the LDPC inner
//! decoder in the DVB-S2 receive chain, correcting up to `t` residual bit
//! errors per frame and thereby removing the LDPC error floor.

use crate::code::BchCode;
use dvbs2_ldpc::BitVec;
use std::fmt;

/// Outcome of a successful BCH decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchDecodeOutcome {
    /// The corrected codeword.
    pub codeword: BitVec,
    /// Number of bit errors corrected (0 ≤ `corrected` ≤ `t`).
    pub corrected: usize,
}

/// The received word had more than `t` errors (or an error pattern outside
/// the shortened code), so it cannot be corrected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncorrectableError {
    /// Degree of the error-locator polynomial that failed.
    pub locator_degree: usize,
}

impl fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uncorrectable BCH word (locator degree {} has no consistent root set)",
            self.locator_degree
        )
    }
}

impl std::error::Error for UncorrectableError {}

/// Berlekamp–Massey BCH decoder.
#[derive(Debug, Clone)]
pub struct BchDecoder {
    code: BchCode,
}

impl BchDecoder {
    /// Builds the decoder.
    pub fn new(code: BchCode) -> Self {
        BchDecoder { code }
    }

    /// The code this decoder serves.
    pub fn code(&self) -> &BchCode {
        &self.code
    }

    /// Computes the `2t` syndromes `S_i = r(α^i)` (bit 0 of `received` is
    /// the highest-degree coefficient, matching the encoder).
    pub fn syndromes(&self, received: &BitVec) -> Vec<u16> {
        let field = self.code.field();
        let n = received.len() as u32;
        let t = self.code.params().t as u32;
        let mut syndromes = vec![0u16; 2 * t as usize];
        for j in 0..n as usize {
            if received.get(j) {
                let degree = n - 1 - j as u32;
                for (i, s) in syndromes.iter_mut().enumerate() {
                    *s ^= field.alpha_pow((i as u32 + 1) * (degree % field.order()));
                }
            }
        }
        syndromes
    }

    /// Decodes a received hard-decision word.
    ///
    /// # Errors
    ///
    /// Returns [`UncorrectableError`] if more than `t` errors are present
    /// (detected via an inconsistent error locator).
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != N_bch`.
    pub fn decode(&self, received: &BitVec) -> Result<BchDecodeOutcome, UncorrectableError> {
        let p = *self.code.params();
        assert_eq!(received.len(), p.n, "received word length mismatch");
        let syndromes = self.syndromes(received);
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(BchDecodeOutcome { codeword: received.clone(), corrected: 0 });
        }
        let locator = self.berlekamp_massey(&syndromes);
        let degree = locator.len() - 1;
        if degree > p.t {
            return Err(UncorrectableError { locator_degree: degree });
        }
        let error_degrees = self.chien_search(&locator, p.n as u32);
        if error_degrees.len() != degree {
            return Err(UncorrectableError { locator_degree: degree });
        }
        let mut codeword = received.clone();
        for &d in &error_degrees {
            codeword.toggle(p.n - 1 - d as usize);
        }
        // Safety net: the corrected word must have zero syndromes.
        if self.syndromes(&codeword).iter().any(|&s| s != 0) {
            return Err(UncorrectableError { locator_degree: degree });
        }
        Ok(BchDecodeOutcome { codeword, corrected: degree })
    }

    /// Berlekamp–Massey: the minimal LFSR (error-locator polynomial Λ,
    /// ascending coefficients, `Λ[0] = 1`) generating the syndromes.
    fn berlekamp_massey(&self, syndromes: &[u16]) -> Vec<u16> {
        let field = self.code.field();
        let mut c: Vec<u16> = vec![1];
        let mut b: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b_disc = 1u16;
        for n in 0..syndromes.len() {
            let mut d = syndromes[n];
            for i in 1..=l.min(c.len() - 1) {
                d ^= field.mul(c[i], syndromes[n - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n {
                let t = c.clone();
                let scale = field.div(d, b_disc);
                if c.len() < b.len() + shift {
                    c.resize(b.len() + shift, 0);
                }
                for (i, &bi) in b.iter().enumerate() {
                    c[i + shift] ^= field.mul(scale, bi);
                }
                l = n + 1 - l;
                b = t;
                b_disc = d;
                shift = 1;
            } else {
                let scale = field.div(d, b_disc);
                if c.len() < b.len() + shift {
                    c.resize(b.len() + shift, 0);
                }
                for (i, &bi) in b.iter().enumerate() {
                    c[i + shift] ^= field.mul(scale, bi);
                }
                shift += 1;
            }
        }
        while c.len() > 1 && *c.last().expect("non-empty") == 0 {
            c.pop();
        }
        c
    }

    /// Chien search over the shortened length: returns the error *degrees*
    /// `d` (positions in polynomial terms, `0 ≤ d < n`) where
    /// `Λ(α^{-d}) = 0`.
    fn chien_search(&self, locator: &[u16], n: u32) -> Vec<u32> {
        let field = self.code.field();
        let order = field.order();
        // terms[i] = Λ_i · α^{-i·d}, updated incrementally over d.
        let mut terms: Vec<u16> = locator.to_vec();
        let steps: Vec<u16> =
            (0..locator.len()).map(|i| field.alpha_pow(order - (i as u32 % order))).collect();
        let mut roots = Vec::new();
        for d in 0..n {
            let mut val = 0u16;
            for &t in &terms {
                val ^= t;
            }
            if val == 0 {
                roots.push(d);
            }
            for (t, &s) in terms.iter_mut().zip(&steps) {
                *t = field.mul(*t, s);
            }
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BchEncoder;
    use dvbs2_ldpc::{CodeRate, FrameSize};
    use rand::seq::index::sample;
    use rand::{rngs::SmallRng, SeedableRng};

    fn setup() -> (BchEncoder, BchDecoder) {
        let code = BchCode::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        (BchEncoder::new(code.clone()), BchDecoder::new(code))
    }

    #[test]
    fn clean_codeword_decodes_with_zero_corrections() {
        let (enc, dec) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let out = dec.decode(&cw).unwrap();
        assert_eq!(out.corrected, 0);
        assert_eq!(out.codeword, cw);
    }

    #[test]
    fn corrects_up_to_t_errors_anywhere() {
        let (enc, dec) = setup();
        let t = dec.code().params().t;
        let n = dec.code().params().n;
        let mut rng = SmallRng::seed_from_u64(2);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        for errors in [1usize, 2, 5, t] {
            let mut corrupted = cw.clone();
            for idx in sample(&mut rng, n, errors) {
                corrupted.toggle(idx);
            }
            let out = dec.decode(&corrupted).unwrap();
            assert_eq!(out.corrected, errors, "{errors} errors");
            assert_eq!(out.codeword, cw, "{errors} errors");
        }
    }

    #[test]
    fn error_bursts_at_the_edges_are_corrected() {
        let (enc, dec) = setup();
        let n = dec.code().params().n;
        let mut rng = SmallRng::seed_from_u64(3);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let mut corrupted = cw.clone();
        for i in [0usize, 1, 2, n - 3, n - 2, n - 1] {
            corrupted.toggle(i);
        }
        let out = dec.decode(&corrupted).unwrap();
        assert_eq!(out.corrected, 6);
        assert_eq!(out.codeword, cw);
    }

    #[test]
    fn more_than_t_errors_is_flagged() {
        let (enc, dec) = setup();
        let t = dec.code().params().t;
        let n = dec.code().params().n;
        let mut rng = SmallRng::seed_from_u64(4);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        // t+1 errors: either flagged uncorrectable (typical) or, rarely,
        // miscorrected into a *different* valid codeword — never silently
        // returned with <= t corrections to the transmitted word.
        let mut corrupted = cw.clone();
        for idx in sample(&mut rng, n, t + 1) {
            corrupted.toggle(idx);
        }
        match dec.decode(&corrupted) {
            Err(_) => {}
            Ok(out) => assert_ne!(out.codeword, cw, "t+1 errors cannot be corrected back"),
        }
    }

    #[test]
    fn normal_frame_t8_code_corrects() {
        let code = BchCode::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let enc = BchEncoder::new(code.clone());
        let dec = BchDecoder::new(code);
        let mut rng = SmallRng::seed_from_u64(5);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let mut corrupted = cw.clone();
        for idx in sample(&mut rng, cw.len(), 8) {
            corrupted.toggle(idx);
        }
        let out = dec.decode(&corrupted).unwrap();
        assert_eq!(out.corrected, 8);
        assert_eq!(out.codeword, cw);
    }
}
