//! Arithmetic in the binary extension fields GF(2^m) used by the DVB-S2
//! outer BCH codes (m = 16 for normal frames, m = 14 for short frames).
//!
//! Implemented with exponent/logarithm tables over a primitive element α;
//! construction *verifies* primitivity of the supplied polynomial, so a
//! wrong constant fails loudly instead of silently producing a non-field.

/// A Galois field GF(2^m) with precomputed exp/log tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisField {
    m: u32,
    /// Field size minus one (the multiplicative order of α).
    n: u32,
    exp: Vec<u16>,
    log: Vec<u16>,
}

impl GaloisField {
    /// Builds GF(2^m) from a primitive polynomial given as a bit mask
    /// (bit `i` = coefficient of `x^i`, including the leading `x^m` term).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= m <= 16`, the polynomial has degree `m`, and it
    /// is primitive (i.e. `x` generates the full multiplicative group).
    pub fn new(m: u32, primitive_poly: u32) -> Self {
        assert!((2..=16).contains(&m), "m must be in 2..=16, got {m}");
        assert_eq!(primitive_poly >> m, 1, "polynomial must have degree {m}");
        let n = (1u32 << m) - 1;
        let mut exp = vec![0u16; 2 * n as usize];
        let mut log = vec![u16::MAX; (n + 1) as usize];
        let mut value = 1u32;
        for i in 0..n {
            assert!(
                log[value as usize] == u16::MAX,
                "polynomial {primitive_poly:#x} is not primitive for m = {m}"
            );
            exp[i as usize] = value as u16;
            log[value as usize] = i as u16;
            value <<= 1;
            if value >> m == 1 {
                value ^= primitive_poly;
            }
        }
        assert_eq!(value, 1, "polynomial {primitive_poly:#x} is not primitive for m = {m}");
        // Duplicate the table so products of logs need no modulo.
        for i in 0..n {
            exp[(n + i) as usize] = exp[i as usize];
        }
        GaloisField { m, n, exp, log }
    }

    /// GF(2^16) with the primitive polynomial `x^16 + x^5 + x^3 + x^2 + 1`
    /// (normal-frame BCH field).
    pub fn gf2_16() -> Self {
        GaloisField::new(16, (1 << 16) | 0b10_1101)
    }

    /// GF(2^14) with the primitive polynomial `x^14 + x^5 + x^3 + x + 1`
    /// (short-frame BCH field).
    pub fn gf2_14() -> Self {
        GaloisField::new(14, (1 << 14) | 0b10_1011)
    }

    /// Field extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `2^m - 1`.
    pub fn order(&self) -> u32 {
        self.n
    }

    /// α raised to `power` (any non-negative exponent).
    #[inline]
    pub fn alpha_pow(&self, power: u32) -> u16 {
        self.exp[(power % self.n) as usize]
    }

    /// Discrete logarithm of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, x: u16) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize] as u32
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] as usize) + (self.log[b as usize] as usize)]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    #[inline]
    pub fn inv(&self, x: u16) -> u16 {
        assert!(x != 0, "inverse of zero");
        self.exp[(self.n - self.log[x as usize] as u32) as usize]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// `x` raised to an arbitrary exponent.
    pub fn pow(&self, x: u16, e: u32) -> u16 {
        if x == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        self.exp[((self.log[x as usize] as u64 * e as u64) % self.n as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small field for exhaustive checks.
    fn gf16() -> GaloisField {
        GaloisField::new(4, 0b1_0011) // x^4 + x + 1
    }

    #[test]
    fn exhaustive_field_axioms_gf16() {
        let f = gf16();
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                if b != 0 {
                    assert_eq!(f.mul(f.div(a, b), b), a, "a={a} b={b}");
                }
                for c in 0..16u16 {
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                    assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                }
            }
        }
    }

    #[test]
    fn inverse_is_total_on_nonzero() {
        let f = gf16();
        for a in 1..16u16 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    fn alpha_generates_the_group() {
        let f = gf16();
        let mut seen = std::collections::HashSet::new();
        for i in 0..15 {
            seen.insert(f.alpha_pow(i));
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = gf16();
        for x in 1..16u16 {
            let mut acc = 1u16;
            for e in 0..20u32 {
                assert_eq!(f.pow(x, e), acc, "x={x} e={e}");
                acc = f.mul(acc, x);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn dvbs2_fields_construct() {
        // Construction itself proves primitivity of the constants.
        let f16 = GaloisField::gf2_16();
        assert_eq!(f16.order(), 65_535);
        let f14 = GaloisField::gf2_14();
        assert_eq!(f14.order(), 16_383);
        // Frobenius sanity: (a+b)^2 = a^2 + b^2.
        let (a, b) = (0x1234u16, 0x0abc);
        assert_eq!(f16.pow(f16.add(a, b), 2), f16.add(f16.pow(a, 2), f16.pow(b, 2)));
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn reducible_polynomial_is_rejected() {
        // x^4 + 1 = (x+1)^4 is not even irreducible.
        let _ = GaloisField::new(4, 0b1_0001);
    }
}
