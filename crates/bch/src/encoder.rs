//! Systematic BCH encoding by polynomial division (the LFSR a hardware
//! outer encoder implements).
//!
//! With message polynomial `m(x)` (first message bit = highest power), the
//! codeword is `m(x)·x^p + (m(x)·x^p mod g(x))`, `p = deg g = m·t` — the
//! message followed by the division remainder.

use crate::code::BchCode;
use dvbs2_ldpc::{BitVec, CodeError};

/// Systematic encoder for one BCH code.
#[derive(Debug, Clone)]
pub struct BchEncoder {
    code: BchCode,
    /// Feedback taps: the generator without its leading term, packed into
    /// words (bit `i` of the register = coefficient of `x^i`).
    feedback: Vec<u64>,
    parity_bits: usize,
}

impl BchEncoder {
    /// Builds the encoder (packs the generator into LFSR taps).
    pub fn new(code: BchCode) -> Self {
        let parity_bits = code.params().parity_bits();
        let mut feedback = vec![0u64; parity_bits.div_ceil(64)];
        for (i, &c) in code.generator()[..parity_bits].iter().enumerate() {
            if c == 1 {
                feedback[i / 64] |= 1 << (i % 64);
            }
        }
        BchEncoder { code, feedback, parity_bits }
    }

    /// The code this encoder serves.
    pub fn code(&self) -> &BchCode {
        &self.code
    }

    /// Encodes a `K_bch`-bit message into an `N_bch`-bit systematic
    /// codeword (message first, parity last).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::MessageLength`] on a wrong-length message.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        let p = self.code.params();
        if message.len() != p.k {
            return Err(CodeError::MessageLength { expected: p.k, actual: message.len() });
        }
        let mut register = vec![0u64; self.feedback.len()];
        let top_word = (self.parity_bits - 1) / 64;
        let top_bit = (self.parity_bits - 1) % 64;
        for bit in message.iter() {
            let feedback_bit = bit ^ ((register[top_word] >> top_bit) & 1 == 1);
            // Shift the whole register left by one.
            let mut carry = 0u64;
            for word in register.iter_mut() {
                let next_carry = *word >> 63;
                *word = (*word << 1) | carry;
                carry = next_carry;
            }
            // Clear bits above the register width (no-op when the width is
            // an exact multiple of 64).
            if top_bit < 63 {
                register[top_word] &= (1u64 << (top_bit + 1)) - 1;
            }
            if feedback_bit {
                for (r, &f) in register.iter_mut().zip(&self.feedback) {
                    *r ^= f;
                }
            }
        }
        let mut codeword = BitVec::zeros(p.n);
        for (i, bit) in message.iter().enumerate() {
            codeword.set(i, bit);
        }
        // Parity bits, highest register bit first (coefficient of x^{p-1}).
        for i in 0..self.parity_bits {
            let reg_index = self.parity_bits - 1 - i;
            let bit = (register[reg_index / 64] >> (reg_index % 64)) & 1 == 1;
            codeword.set(p.k + i, bit);
        }
        Ok(codeword)
    }

    /// Draws a uniformly random message.
    pub fn random_message<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        (0..self.code.params().k).map(|_| rng.random::<bool>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf::GaloisField;
    use dvbs2_ldpc::{CodeRate, FrameSize};
    use rand::{rngs::SmallRng, SeedableRng};

    fn short_encoder() -> BchEncoder {
        BchEncoder::new(BchCode::new(CodeRate::R1_2, FrameSize::Short).unwrap())
    }

    /// Evaluates the received word as a polynomial at α^i (bit 0 = highest
    /// power), the defining parity check of a BCH code.
    fn eval_at_alpha_pow(field: &GaloisField, word: &BitVec, i: u32) -> u16 {
        let n = word.len();
        let mut val = 0u16;
        for j in 0..n {
            if word.get(j) {
                val ^= field.alpha_pow(i * ((n - 1 - j) as u32 % field.order()));
            }
        }
        val
    }

    #[test]
    fn codewords_have_zero_syndromes() {
        let enc = short_encoder();
        let mut rng = SmallRng::seed_from_u64(3);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let field = enc.code().field();
        let t = enc.code().params().t as u32;
        for i in 1..=2 * t {
            assert_eq!(eval_at_alpha_pow(field, &cw, i), 0, "syndrome {i}");
        }
    }

    #[test]
    fn encoding_is_systematic_and_linear() {
        let enc = short_encoder();
        let mut rng = SmallRng::seed_from_u64(5);
        let a = enc.random_message(&mut rng);
        let b = enc.random_message(&mut rng);
        let ca = enc.encode(&a).unwrap();
        for i in 0..a.len() {
            assert_eq!(ca.get(i), a.get(i));
        }
        let mut ab = a;
        ab ^= &b;
        let mut sum = ca;
        sum ^= &enc.encode(&b).unwrap();
        assert_eq!(enc.encode(&ab).unwrap(), sum);
    }

    #[test]
    fn zero_message_encodes_to_zero() {
        let enc = short_encoder();
        let cw = enc.encode(&BitVec::zeros(enc.code().params().k)).unwrap();
        assert_eq!(cw.count_ones(), 0);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let enc = short_encoder();
        assert!(matches!(enc.encode(&BitVec::zeros(10)), Err(CodeError::MessageLength { .. })));
    }

    #[test]
    fn normal_frame_codeword_also_checks() {
        let enc = BchEncoder::new(BchCode::new(CodeRate::R9_10, FrameSize::Normal).unwrap());
        let mut rng = SmallRng::seed_from_u64(7);
        let cw = enc.encode(&enc.random_message(&mut rng)).unwrap();
        let field = enc.code().field();
        for i in 1..=4u32 {
            assert_eq!(eval_at_alpha_pow(field, &cw, i), 0, "syndrome {i}");
        }
    }
}
