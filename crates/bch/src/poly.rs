//! Generator-polynomial construction for BCH codes: cyclotomic cosets,
//! minimal polynomials and their product.

use crate::gf::GaloisField;

/// The cyclotomic coset of `j` modulo `2^m - 1`: `{j, 2j, 4j, ...}`.
pub fn cyclotomic_coset(field: &GaloisField, j: u32) -> Vec<u32> {
    let n = field.order();
    let mut coset = Vec::new();
    let mut x = j % n;
    loop {
        coset.push(x);
        x = (x * 2) % n;
        if x == j % n {
            break;
        }
    }
    coset
}

/// Minimal polynomial of `α^j` over GF(2), returned as 0/1 coefficients
/// (index = power of `x`). Its degree equals the coset size.
///
/// # Panics
///
/// Panics if the product's coefficients fail to collapse into GF(2) —
/// which would indicate a broken field, not bad input.
pub fn minimal_polynomial(field: &GaloisField, j: u32) -> Vec<u8> {
    let coset = cyclotomic_coset(field, j);
    // Product of (x + α^k) over the coset, in GF(2^m)[x].
    let mut poly: Vec<u16> = vec![1];
    for &k in &coset {
        let root = field.alpha_pow(k);
        let mut next = vec![0u16; poly.len() + 1];
        for (i, &c) in poly.iter().enumerate() {
            next[i + 1] ^= c; // c * x
            next[i] ^= field.mul(c, root); // c * root
        }
        poly = next;
    }
    poly.iter()
        .map(|&c| {
            assert!(c <= 1, "minimal polynomial has a non-binary coefficient");
            c as u8
        })
        .collect()
}

/// The narrow-sense BCH generator polynomial for error-correcting
/// capability `t`: the product of the distinct minimal polynomials of
/// `α^1, α^3, …, α^(2t-1)`. Returned as 0/1 coefficients; its degree is
/// `m·t` for the DVB-S2 parameters.
pub fn generator_polynomial(field: &GaloisField, t: u32) -> Vec<u8> {
    let mut seen_cosets: Vec<u32> = Vec::new();
    let mut gen: Vec<u8> = vec![1];
    for i in 0..t {
        let j = 2 * i + 1;
        let representative = *cyclotomic_coset(field, j).iter().min().expect("non-empty coset");
        if seen_cosets.contains(&representative) {
            continue;
        }
        seen_cosets.push(representative);
        let min_poly = minimal_polynomial(field, j);
        gen = multiply_binary(&gen, &min_poly);
    }
    gen
}

/// Product of two GF(2) polynomials.
pub fn multiply_binary(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 1 {
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= bj;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> GaloisField {
        GaloisField::new(4, 0b1_0011)
    }

    #[test]
    fn cosets_partition_and_close_under_doubling() {
        let f = gf16();
        let c = cyclotomic_coset(&f, 1);
        assert_eq!(c, vec![1, 2, 4, 8]);
        let c3 = cyclotomic_coset(&f, 3);
        assert_eq!(c3, vec![3, 6, 12, 9]);
        let c5 = cyclotomic_coset(&f, 5);
        assert_eq!(c5, vec![5, 10]);
    }

    #[test]
    fn minimal_polynomials_of_gf16_match_textbook() {
        // Classic table for GF(16) with x^4 + x + 1.
        let f = gf16();
        assert_eq!(minimal_polynomial(&f, 1), vec![1, 1, 0, 0, 1]); // x^4+x+1
        assert_eq!(minimal_polynomial(&f, 3), vec![1, 1, 1, 1, 1]); // x^4+x^3+x^2+x+1
        assert_eq!(minimal_polynomial(&f, 5), vec![1, 1, 1]); // x^2+x+1
    }

    #[test]
    fn minimal_polynomial_annihilates_its_root() {
        let f = gf16();
        for j in [1u32, 3, 5, 7] {
            let p = minimal_polynomial(&f, j);
            let root = f.alpha_pow(j);
            let mut val = 0u16;
            for (i, &c) in p.iter().enumerate() {
                if c == 1 {
                    val = f.add(val, f.pow(root, i as u32));
                }
            }
            assert_eq!(val, 0, "j = {j}");
        }
    }

    #[test]
    fn bch_15_7_generator() {
        // The (15,7) t=2 BCH generator is x^8+x^7+x^6+x^4+1.
        let f = gf16();
        let g = generator_polynomial(&f, 2);
        assert_eq!(g, vec![1, 0, 0, 0, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn dvbs2_generator_degrees() {
        // Degree must be m*t for the DVB-S2 parameters (all the involved
        // cosets are full-size and distinct).
        let f16 = GaloisField::gf2_16();
        for t in [8u32, 10, 12] {
            let g = generator_polynomial(&f16, t);
            assert_eq!(g.len() - 1, (16 * t) as usize, "t = {t}");
        }
        let f14 = GaloisField::gf2_14();
        let g = generator_polynomial(&f14, 12);
        assert_eq!(g.len() - 1, 168);
    }

    #[test]
    fn multiply_binary_matches_convolution() {
        // (x+1)(x+1) = x^2 + 1 over GF(2).
        assert_eq!(multiply_binary(&[1, 1], &[1, 1]), vec![1, 0, 1]);
    }
}
