//! DVB-S2 outer BCH code parameters and construction.
//!
//! DVB-S2 concatenates an outer BCH code with the inner LDPC code: the
//! BCH codeword of length `N_bch = K_ldpc` becomes the LDPC information
//! block, and the BCH code cleans the residual errors of the iterative
//! LDPC decoder (removing its error floor). Normal frames use a shortened
//! BCH over GF(2^16), short frames over GF(2^14).

use crate::gf::GaloisField;
use crate::poly::generator_polynomial;
use dvbs2_ldpc::{CodeError, CodeParams, CodeRate, FrameSize};
use std::sync::Arc;

/// Parameters of one DVB-S2 outer BCH code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BchParams {
    /// Code rate of the concatenated FEC frame this BCH code belongs to.
    pub rate: CodeRate,
    /// Frame size.
    pub frame: FrameSize,
    /// BCH message length `K_bch`.
    pub k: usize,
    /// BCH codeword length `N_bch` (= `K_ldpc`).
    pub n: usize,
    /// Correctable errors `t`.
    pub t: usize,
    /// Field extension degree `m` (16 normal, 14 short).
    pub m: u32,
}

/// `t` per rate for normal frames, from the standard (`K_bch` follows as
/// `K_ldpc - m·t`).
const NORMAL_T: [(CodeRate, usize); 11] = [
    (CodeRate::R1_4, 12),
    (CodeRate::R1_3, 12),
    (CodeRate::R2_5, 12),
    (CodeRate::R1_2, 12),
    (CodeRate::R3_5, 12),
    (CodeRate::R2_3, 10),
    (CodeRate::R3_4, 12),
    (CodeRate::R4_5, 12),
    (CodeRate::R5_6, 10),
    (CodeRate::R8_9, 8),
    (CodeRate::R9_10, 8),
];

impl BchParams {
    /// Looks up the outer-code parameters for a rate/frame combination.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCombination`] if the LDPC inner code
    /// is undefined (9/10 short).
    pub fn new(rate: CodeRate, frame: FrameSize) -> Result<Self, CodeError> {
        let ldpc = CodeParams::new(rate, frame)?;
        let (t, m) = match frame {
            FrameSize::Normal => {
                let &(_, t) = NORMAL_T.iter().find(|row| row.0 == rate).expect("all rates");
                (t, 16)
            }
            // Short frames: t = 12 over GF(2^14) for every rate.
            FrameSize::Short => (12, 14),
        };
        let n = ldpc.k;
        let parity = m as usize * t;
        Ok(BchParams { rate, frame, k: n - parity, n, t, m })
    }

    /// Parity bits `m·t`.
    pub fn parity_bits(&self) -> usize {
        self.m as usize * self.t
    }

    /// Overall concatenated FEC rate `K_bch / N_ldpc`.
    pub fn concatenated_rate(&self) -> f64 {
        let ldpc = CodeParams::new(self.rate, self.frame).expect("validated in new");
        self.k as f64 / ldpc.n as f64
    }
}

/// A constructed BCH code: parameters, field and generator polynomial.
#[derive(Debug, Clone)]
pub struct BchCode {
    params: BchParams,
    field: Arc<GaloisField>,
    /// Generator coefficients (0/1, index = power of x), degree `m·t`.
    generator: Vec<u8>,
}

impl BchCode {
    /// Builds the outer BCH code for a rate/frame combination.
    ///
    /// # Errors
    ///
    /// Same as [`BchParams::new`].
    pub fn new(rate: CodeRate, frame: FrameSize) -> Result<Self, CodeError> {
        let params = BchParams::new(rate, frame)?;
        let field = Arc::new(match frame {
            FrameSize::Normal => GaloisField::gf2_16(),
            FrameSize::Short => GaloisField::gf2_14(),
        });
        let generator = generator_polynomial(&field, params.t as u32);
        debug_assert_eq!(generator.len() - 1, params.parity_bits());
        Ok(BchCode { params, field, generator })
    }

    /// The code parameters.
    pub fn params(&self) -> &BchParams {
        &self.params
    }

    /// The underlying field.
    pub fn field(&self) -> &GaloisField {
        &self.field
    }

    /// Generator polynomial coefficients (0/1, ascending powers).
    pub fn generator(&self) -> &[u8] {
        &self.generator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_frame_parameters_match_standard() {
        // Spot values from EN 302 307 Table 5a.
        let p = BchParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        assert_eq!((p.k, p.n, p.t), (32_208, 32_400, 12));
        let p = BchParams::new(CodeRate::R2_3, FrameSize::Normal).unwrap();
        assert_eq!((p.k, p.n, p.t), (43_040, 43_200, 10));
        let p = BchParams::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        assert_eq!((p.k, p.n, p.t), (58_192, 58_320, 8));
    }

    #[test]
    fn short_frames_use_t12_over_gf14() {
        let p = BchParams::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        assert_eq!((p.k, p.n, p.t, p.m), (7_032, 7_200, 12, 14));
    }

    #[test]
    fn concatenated_rate_is_slightly_below_nominal() {
        let p = BchParams::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        let r = p.concatenated_rate();
        assert!(r < 0.5 && r > 0.49, "{r}");
    }

    #[test]
    fn code_constructs_with_expected_generator_degree() {
        let code = BchCode::new(CodeRate::R8_9, FrameSize::Normal).unwrap();
        assert_eq!(code.generator().len() - 1, 128);
        assert_eq!(*code.generator().last().unwrap(), 1);
        assert_eq!(code.generator()[0], 1);
    }

    #[test]
    fn shortened_length_fits_the_field() {
        for rate in CodeRate::ALL {
            let p = BchParams::new(rate, FrameSize::Normal).unwrap();
            assert!(p.n < (1 << p.m), "{rate}");
        }
    }
}
