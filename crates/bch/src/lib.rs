//! DVB-S2 outer BCH codes.
//!
//! The DVB-S2 FEC frame concatenates an outer BCH code with the inner LDPC
//! code the paper's IP core decodes: `K_bch` data bits → BCH codeword of
//! `N_bch = K_ldpc` bits → LDPC codeword of `N_ldpc` bits. After the
//! iterative LDPC decoder, the algebraic BCH decoder corrects up to `t`
//! residual errors, removing the LDPC error floor. The paper treats the
//! BCH stage as part of the surrounding standard; this crate implements it
//! so the repository covers the complete FEC chain.
//!
//! * [`GaloisField`] — GF(2^16)/GF(2^14) arithmetic (tables, verified
//!   primitive polynomials);
//! * [`BchCode`]/[`BchParams`] — per-rate parameters and generator
//!   polynomials (via cyclotomic cosets and minimal polynomials);
//! * [`BchEncoder`] — systematic LFSR encoding;
//! * [`BchDecoder`] — syndromes, Berlekamp–Massey, Chien search.
//!
//! # Example
//!
//! ```
//! use dvbs2_bch::{BchCode, BchDecoder, BchEncoder};
//! use dvbs2_ldpc::{BitVec, CodeRate, FrameSize};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = BchCode::new(CodeRate::R1_2, FrameSize::Short)?;
//! let encoder = BchEncoder::new(code.clone());
//! let decoder = BchDecoder::new(code);
//!
//! let message = BitVec::zeros(encoder.code().params().k);
//! let mut word = encoder.encode(&message)?;
//! word.toggle(123); // a residual error from the LDPC stage
//! word.toggle(4567);
//! let fixed = decoder.decode(&word)?;
//! assert_eq!(fixed.corrected, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod code;
mod decoder;
mod encoder;
mod gf;
mod poly;

pub use code::{BchCode, BchParams};
pub use decoder::{BchDecodeOutcome, BchDecoder, UncorrectableError};
pub use encoder::BchEncoder;
pub use gf::GaloisField;
pub use poly::{cyclotomic_coset, generator_polynomial, minimal_polynomial, multiply_binary};
