//! Fault models for the decoder core and its golden model.
//!
//! The message RAM dominates the core's area (Table 3), which makes memory
//! upsets the dominant real-world failure mode; the functional-unit datapath
//! is the other physically plausible defect site. This module models both:
//!
//! * [`RamFault`] — a stuck or bit-flipping wide word in the message RAM;
//! * [`FaultActivation`] — when a RAM fault is active: permanently, during
//!   an iteration window (a transient burst), or per-commit with a seeded
//!   probability (random soft errors);
//! * [`FuFault`] — a stuck sign or magnitude lane in one functional unit's
//!   output port;
//! * [`FaultScenario`] — up to [`MAX_SCENARIO_FAULTS`] concurrent timed RAM
//!   faults plus an optional FU fault, injected as one unit into
//!   [`crate::HardwareDecoder`] and [`crate::GoldenModel`].
//!
//! # Bit-exactness under faults
//!
//! The differential oracle demands that an equally-faulted timed core and
//! golden model agree on every decision *and* every per-iteration message
//! digest. Corruption therefore keys on **logical commit coordinates**
//! ([`CommitPoint`]: iteration index and phase), never on physical cycle
//! numbers — the timed core commits writes in bank-arbitrated order that an
//! untimed model cannot reproduce, but each wide word commits exactly once
//! per phase per iteration on both models, so any pure function of
//! `(commit point, word, written data)` yields identical RAM images. The
//! initial all-zero fill is its own phase ([`CommitPhase::PowerOn`], at
//! iteration 0): a permanently stuck cell is stuck from power-on, while a
//! windowed transient only perturbs the fill if its window covers
//! iteration 0.
//!
//! All corrupted lanes are snapped back into the active [`Quantizer`]
//! domain, so a fault perturbs message values without ever leaving the
//! value domain a fault-free decode operates in.

use dvbs2_decoder::Quantizer;
use dvbs2_ldpc::PARALLELISM;

/// A modeled defect in the message RAM, for fault-injection testing (the
/// `dvbs2::oracle` differential suite asserts the core degrades gracefully —
/// wrong bits at worst, never a panic or hang).
///
/// Faults act at write-commit time: whenever the memory subsystem commits a
/// wide word to the RAM, the stored value is corrupted. The initial all-zero
/// RAM contents are corrupted too (a stuck cell is stuck from power-on).
/// Corrupted values are snapped into the quantizer's representable domain,
/// so the fault perturbs data without leaving the model's value domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RamFault {
    /// Every lane of wide word `word` reads back `value` regardless of what
    /// was written (a stuck word line).
    StuckWord {
        /// Faulty wide-word address.
        word: usize,
        /// The value every lane is stuck at.
        value: i32,
    },
    /// Every lane of wide word `word` has `mask` XORed onto it at each write
    /// commit (bit flips on the write path).
    FlippedBits {
        /// Faulty wide-word address.
        word: usize,
        /// Bit mask XORed onto each lane's stored value.
        mask: i32,
    },
}

impl RamFault {
    /// The faulty wide-word address.
    pub fn word(&self) -> usize {
        match *self {
            RamFault::StuckWord { word, .. } | RamFault::FlippedBits { word, .. } => word,
        }
    }

    /// Corrupts the stored lanes of the faulty word, snapping every
    /// corrupted lane onto the quantizer's representable grid (for the
    /// uniform quantizer this is saturation at `±max_mag`; routing through
    /// the [`Quantizer`] makes the domain invariant explicit instead of an
    /// accident of mirrored clamping).
    pub(crate) fn corrupt(&self, lanes: &mut [i32], quantizer: &Quantizer) {
        match *self {
            RamFault::StuckWord { value, .. } => lanes.fill(quantizer.saturate(value)),
            RamFault::FlippedBits { mask, .. } => {
                for lane in lanes {
                    *lane = quantizer.saturate(*lane ^ mask);
                }
            }
        }
    }
}

/// The phase a write commit belongs to. Together with the iteration index
/// this forms the logical coordinate system fault activation keys on (see
/// the module docs for why physical cycles cannot be used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    /// The initial RAM fill before the first iteration.
    PowerOn,
    /// An information-phase (variable-node) write-back.
    Info,
    /// A check-phase write-back.
    Check,
}

impl CommitPhase {
    fn code(self) -> u64 {
        match self {
            CommitPhase::PowerOn => 0,
            CommitPhase::Info => 1,
            CommitPhase::Check => 2,
        }
    }
}

/// Logical coordinates of one write commit: which iteration and phase it
/// belongs to. Identical on the timed core and the golden model for the same
/// word, which is what makes transient faults bit-exact across both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitPoint {
    /// Decode iteration, counted from 0. The power-on fill is iteration 0.
    pub iteration: u32,
    /// The phase within the iteration.
    pub phase: CommitPhase,
}

impl CommitPoint {
    /// The initial RAM fill.
    pub fn power_on() -> Self {
        CommitPoint { iteration: 0, phase: CommitPhase::PowerOn }
    }
}

/// When a RAM fault corrupts commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultActivation {
    /// Active at every commit including the power-on fill — the pre-existing
    /// "stuck forever" behavior.
    #[default]
    Permanent,
    /// Active while `from <= iteration < until` (a transient burst). The
    /// power-on fill counts as iteration 0, so a window starting at 0 also
    /// corrupts the initial RAM contents.
    Window {
        /// First faulty iteration.
        from: u32,
        /// One past the last faulty iteration.
        until: u32,
    },
    /// Active at each individual commit with probability `per_mille / 1000`,
    /// decided by a seeded hash of the commit coordinates — deterministic,
    /// and identical on the timed and untimed models.
    Random {
        /// Hash seed; different seeds give independent upset patterns.
        seed: u32,
        /// Upset probability in 1/1000 units (values above 1000 saturate to
        /// "always").
        per_mille: u32,
    },
}

/// SplitMix64 finalizer — cheap, well-mixed, and dependency-free.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultActivation {
    /// Whether the fault corrupts a commit of `word` at `point`.
    pub fn is_active(&self, point: CommitPoint, word: usize) -> bool {
        match *self {
            FaultActivation::Permanent => true,
            FaultActivation::Window { from, until } => {
                from <= point.iteration && point.iteration < until
            }
            FaultActivation::Random { seed, per_mille } => {
                let h =
                    mix(mix(seed as u64 ^ ((point.iteration as u64) << 2) ^ point.phase.code())
                        ^ word as u64);
                h % 1000 < per_mille as u64
            }
        }
    }
}

/// One RAM fault paired with its activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRamFault {
    /// The defect.
    pub fault: RamFault,
    /// When it corrupts commits.
    pub activation: FaultActivation,
}

impl TimedRamFault {
    /// A permanently active fault (the pre-existing single-fault semantics).
    pub fn permanent(fault: RamFault) -> Self {
        TimedRamFault { fault, activation: FaultActivation::Permanent }
    }
}

/// A stuck lane in one functional unit's output datapath. Applied to every
/// extrinsic output the unit produces (information-phase variable-node
/// outputs and check-phase outputs including the zigzag parity messages),
/// identically on both models — the FU array is shared, so bit-exactness
/// holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuFault {
    /// The unit's output sign bit is stuck: every output is forced to the
    /// given sign (magnitude preserved).
    StuckSign {
        /// Faulty functional unit, `0..360`.
        unit: usize,
        /// `true` forces negative outputs, `false` positive.
        negative: bool,
    },
    /// The unit's output magnitude lanes are stuck at `value` (sign
    /// preserved; zero outputs count as positive).
    StuckMag {
        /// Faulty functional unit, `0..360`.
        unit: usize,
        /// The stuck magnitude (snapped into the quantizer domain).
        value: i32,
    },
}

impl FuFault {
    /// The faulty functional unit index.
    pub fn unit(&self) -> usize {
        match *self {
            FuFault::StuckSign { unit, .. } | FuFault::StuckMag { unit, .. } => unit,
        }
    }

    /// Corrupts one output value of the faulty unit.
    pub(crate) fn corrupt(&self, v: i32, quantizer: &Quantizer) -> i32 {
        match *self {
            FuFault::StuckSign { negative, .. } => {
                if negative {
                    -v.abs()
                } else {
                    v.abs()
                }
            }
            FuFault::StuckMag { value, .. } => {
                let mag = quantizer.saturate(value.abs());
                if v < 0 {
                    -mag
                } else {
                    mag
                }
            }
        }
    }
}

/// Maximum number of concurrent RAM faults in a [`FaultScenario`].
///
/// The bound keeps the scenario `Copy` (the oracle's `CaseSpec` and its
/// shrinker rely on by-value case structs) and is far beyond what a
/// plausible physical defect pattern needs.
pub const MAX_SCENARIO_FAULTS: usize = 4;

/// A complete fault-injection scenario: up to [`MAX_SCENARIO_FAULTS`]
/// concurrent RAM faults, each with its own activation, plus at most one
/// functional-unit datapath fault.
///
/// The empty (default) scenario injects nothing and decodes bit-identically
/// to a fault-free core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultScenario {
    ram: [Option<TimedRamFault>; MAX_SCENARIO_FAULTS],
    fu: Option<FuFault>,
}

impl FaultScenario {
    /// The empty scenario (no faults).
    pub fn none() -> Self {
        FaultScenario::default()
    }

    /// A scenario holding one permanent RAM fault — the exact pre-existing
    /// `set_fault(Some(..))` semantics.
    pub fn single(fault: RamFault) -> Self {
        let mut s = FaultScenario::default();
        s.ram[0] = Some(TimedRamFault::permanent(fault));
        s
    }

    /// Whether the scenario injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.ram.iter().all(Option::is_none) && self.fu.is_none()
    }

    /// Number of RAM faults in the scenario.
    pub fn ram_fault_count(&self) -> usize {
        self.ram.iter().flatten().count()
    }

    /// Appends a RAM fault. Returns `false` (scenario unchanged) if all
    /// [`MAX_SCENARIO_FAULTS`] slots are taken.
    pub fn push_ram(&mut self, fault: TimedRamFault) -> bool {
        for slot in &mut self.ram {
            if slot.is_none() {
                *slot = Some(fault);
                return true;
            }
        }
        false
    }

    /// Builder form of [`FaultScenario::push_ram`] (silently drops the fault
    /// when full — callers composing random scenarios saturate gracefully).
    pub fn with_ram(mut self, fault: TimedRamFault) -> Self {
        self.push_ram(fault);
        self
    }

    /// Sets (or clears) the functional-unit fault.
    pub fn set_fu(&mut self, fault: Option<FuFault>) {
        self.fu = fault;
    }

    /// Builder form of [`FaultScenario::set_fu`].
    pub fn with_fu(mut self, fault: Option<FuFault>) -> Self {
        self.fu = fault;
        self
    }

    /// The functional-unit fault, if any.
    pub fn fu_fault(&self) -> Option<FuFault> {
        self.fu
    }

    /// The RAM faults in application order.
    pub fn ram_faults(&self) -> impl Iterator<Item = &TimedRamFault> {
        self.ram.iter().flatten()
    }

    /// If the scenario is exactly one permanently active RAM fault (and no
    /// FU fault), that fault — the cases the pre-scenario API could express.
    pub fn as_single_permanent(&self) -> Option<RamFault> {
        if self.fu.is_some() || self.ram_fault_count() != 1 {
            return None;
        }
        match self.ram[0] {
            Some(TimedRamFault { fault, activation: FaultActivation::Permanent }) => Some(fault),
            _ => None,
        }
    }

    /// Validates fault addresses against a RAM of `words` wide words.
    ///
    /// # Panics
    ///
    /// Panics if any RAM fault's word is `>= words` or the FU fault's unit
    /// is `>= 360`.
    pub fn validate(&self, words: usize) {
        for t in self.ram_faults() {
            assert!(t.fault.word() < words, "fault word {} out of range", t.fault.word());
        }
        if let Some(f) = self.fu {
            assert!(f.unit() < PARALLELISM, "fault unit {} out of range", f.unit());
        }
    }

    /// Applies every RAM fault active at `point` that targets `word` to the
    /// freshly committed `lanes`, in scenario order.
    pub(crate) fn corrupt_word(
        &self,
        word: usize,
        lanes: &mut [i32],
        quantizer: &Quantizer,
        point: CommitPoint,
    ) {
        for t in self.ram_faults() {
            if t.fault.word() == word && t.activation.is_active(point, word) {
                t.fault.corrupt(lanes, quantizer);
            }
        }
    }

    /// Applies the power-on corruption to the freshly zero-filled message
    /// RAM (`ram[word * 360 + lane]` layout).
    pub(crate) fn corrupt_power_on(&self, ram: &mut [i32], quantizer: &Quantizer) {
        let p = PARALLELISM;
        let point = CommitPoint::power_on();
        for t in self.ram_faults() {
            let w = t.fault.word();
            if t.activation.is_active(point, w) {
                t.fault.corrupt(&mut ram[w * p..(w + 1) * p], quantizer);
            }
        }
    }
}

impl From<RamFault> for FaultScenario {
    fn from(fault: RamFault) -> Self {
        FaultScenario::single(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupted_lanes_stay_on_the_quantizer_grid() {
        // Property pin for the re-quantization bugfix: for every stuck value
        // and flip mask over an exhaustive domain window, every corrupted
        // lane must be a representable code of the active quantizer —
        // saturated in magnitude AND exactly reproducible through a
        // dequantize/quantize round trip (i.e. on the step grid).
        for quantizer in [Quantizer::paper_6bit(), Quantizer::paper_5bit(), Quantizer::new(4, 1.0)]
        {
            let max = quantizer.max_mag();
            let domain: Vec<i32> = (-max..=max).collect();
            for value in -70..=70 {
                let mut lanes = domain.clone();
                RamFault::StuckWord { word: 0, value }.corrupt(&mut lanes, &quantizer);
                for &v in &lanes {
                    assert!(v.abs() <= max, "stuck {value} left domain: {v}");
                    assert_eq!(quantizer.quantize(quantizer.dequantize(v)), v);
                }
            }
            for mask in 0..=64 {
                let mut lanes = domain.clone();
                RamFault::FlippedBits { word: 0, mask }.corrupt(&mut lanes, &quantizer);
                for &v in &lanes {
                    assert!(v.abs() <= max, "mask {mask} left domain: {v}");
                    assert_eq!(quantizer.quantize(quantizer.dequantize(v)), v);
                }
            }
        }
    }

    #[test]
    fn corrupt_matches_pre_scenario_clamp_semantics() {
        // Backward-compatibility pin: with the uniform quantizer every
        // integer in ±max_mag is on the grid, so snapping through the
        // quantizer must be value-identical to the historical bare clamp —
        // pre-PR-7 fault repro strings keep byte-identical behavior.
        let quantizer = Quantizer::paper_6bit();
        let max = quantizer.max_mag();
        for value in [-100, -32, -31, -1, 0, 1, 30, 31, 99] {
            let mut lanes = vec![5, -17, 31];
            RamFault::StuckWord { word: 0, value }.corrupt(&mut lanes, &quantizer);
            assert!(lanes.iter().all(|&v| v == value.clamp(-max, max)));
        }
        for mask in [0, 1, 0b10101, 63] {
            let original = vec![5, -17, 31, 0, -31];
            let mut lanes = original.clone();
            RamFault::FlippedBits { word: 0, mask }.corrupt(&mut lanes, &quantizer);
            for (&before, &after) in original.iter().zip(&lanes) {
                assert_eq!(after, (before ^ mask).clamp(-max, max));
            }
        }
    }

    #[test]
    fn window_activation_covers_half_open_range() {
        let a = FaultActivation::Window { from: 2, until: 5 };
        let at = |iteration, phase| CommitPoint { iteration, phase };
        assert!(!a.is_active(at(0, CommitPhase::PowerOn), 3));
        assert!(!a.is_active(at(1, CommitPhase::Check), 3));
        assert!(a.is_active(at(2, CommitPhase::Info), 3));
        assert!(a.is_active(at(4, CommitPhase::Check), 3));
        assert!(!a.is_active(at(5, CommitPhase::Info), 3));
        // A window starting at 0 also corrupts the power-on fill.
        let from_zero = FaultActivation::Window { from: 0, until: 1 };
        assert!(from_zero.is_active(CommitPoint::power_on(), 3));
    }

    #[test]
    fn random_activation_is_deterministic_and_rate_shaped() {
        let a = FaultActivation::Random { seed: 7, per_mille: 250 };
        let mut active = 0usize;
        let total = 4000usize;
        for iteration in 0..40u32 {
            for word in 0..100usize {
                let p = CommitPoint { iteration, phase: CommitPhase::Check };
                let hit = a.is_active(p, word);
                assert_eq!(hit, a.is_active(p, word), "must be deterministic");
                active += hit as usize;
            }
        }
        let rate = active as f64 / total as f64;
        assert!((0.18..0.32).contains(&rate), "rate {rate} far from 0.25");
        // Extremes.
        assert!(FaultActivation::Random { seed: 1, per_mille: 1000 }
            .is_active(CommitPoint::power_on(), 0));
        assert!(!FaultActivation::Random { seed: 1, per_mille: 0 }
            .is_active(CommitPoint::power_on(), 0));
    }

    #[test]
    fn scenario_holds_multiple_faults_in_order() {
        let quantizer = Quantizer::paper_6bit();
        let mut s = FaultScenario::single(RamFault::StuckWord { word: 2, value: 9 });
        assert!(s.push_ram(TimedRamFault::permanent(RamFault::FlippedBits { word: 2, mask: 1 })));
        assert_eq!(s.ram_fault_count(), 2);
        assert_eq!(s.as_single_permanent(), None);
        // Both target word 2: stuck applies first, then the flip — order is
        // scenario order.
        let mut lanes = vec![0i32; 4];
        s.corrupt_word(2, &mut lanes, &quantizer, CommitPoint::power_on());
        assert!(lanes.iter().all(|&v| v == 8)); // 9 ^ 1
                                                // Capacity saturates at MAX_SCENARIO_FAULTS.
        for w in 0..MAX_SCENARIO_FAULTS {
            s.push_ram(TimedRamFault::permanent(RamFault::StuckWord { word: w, value: 0 }));
        }
        assert_eq!(s.ram_fault_count(), MAX_SCENARIO_FAULTS);
        assert!(!s.push_ram(TimedRamFault::permanent(RamFault::StuckWord { word: 9, value: 0 })));
    }

    #[test]
    fn single_permanent_round_trips_through_scenario() {
        let f = RamFault::FlippedBits { word: 11, mask: 5 };
        let s = FaultScenario::from(f);
        assert_eq!(s.as_single_permanent(), Some(f));
        assert!(!s.is_empty());
        assert!(FaultScenario::none().is_empty());
        let fu = Some(FuFault::StuckSign { unit: 0, negative: true });
        assert_eq!(s.with_fu(fu).as_single_permanent(), None);
    }

    #[test]
    fn fu_fault_forces_sign_and_magnitude() {
        let quantizer = Quantizer::paper_6bit();
        let neg = FuFault::StuckSign { unit: 3, negative: true };
        let pos = FuFault::StuckSign { unit: 3, negative: false };
        for v in [-31, -4, 0, 4, 31] {
            assert!(neg.corrupt(v, &quantizer) <= 0);
            assert!(pos.corrupt(v, &quantizer) >= 0);
            assert_eq!(neg.corrupt(v, &quantizer).abs(), v.abs());
        }
        let mag = FuFault::StuckMag { unit: 3, value: 99 };
        assert_eq!(mag.corrupt(5, &quantizer), 31); // saturated into domain
        assert_eq!(mag.corrupt(-5, &quantizer), -31);
        assert_eq!(mag.corrupt(0, &quantizer), 31); // zero counts as positive
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range_unit() {
        FaultScenario::none()
            .with_fu(Some(FuFault::StuckMag { unit: PARALLELISM, value: 1 }))
            .validate(100);
    }
}
