//! Untimed golden model of the IP core's data flow.
//!
//! Executes exactly the arithmetic the hardware performs — same message RAM
//! layout, same shuffle rotations, same functional-unit input ordering (the
//! annealed schedule's order, not the Tanner graph's), same 360-way
//! partitioned zigzag chains — but with no clocking, banking or buffering.
//! The cycle-accurate [`crate::HardwareDecoder`] must match this model bit
//! for bit; that equivalence is the repository's analogue of RTL-versus-
//! golden-model verification.
//!
//! Two deliberate architectural deviations from the ideal sequential zigzag
//! of `dvbs2_decoder::ZigzagDecoder` (both negligible at N = 64800, verified
//! by the `fig2_schedules` bench):
//!
//! * the 360 functional units run 360 *parallel* forward chains; the forward
//!   message crossing a chain boundary comes from the previous iteration;
//! * the backward message at a chain boundary is written at row 0 and read
//!   at row `q-1`, so it is one iteration fresher than in the ideal
//!   schedule.

use crate::fault::{CommitPhase, CommitPoint, FaultScenario, RamFault};
use crate::functional_unit::FunctionalUnitArray;
use crate::rom::ConnectivityRom;
use crate::schedule::CnSchedule;
use crate::shuffle::ShuffleNetwork;
use dvbs2_decoder::{hard_decisions_int, DecodeResult, Quantizer};
use dvbs2_ldpc::{CodeParams, DvbS2Code, PARALLELISM};

/// The untimed functional model (see module docs).
///
/// # Chain-boundary semantics vs the sequential `QuantizedZigzagDecoder`
///
/// `dvbs2_decoder::QuantizedZigzagDecoder` sweeps the degree-2 parity chain
/// as **one** sequence over all `N − K` checks: every check `c > 0` consumes
/// check `c − 1`'s forward output from the *same* iteration, and all
/// backward messages come from the *previous* iteration. This model executes
/// the hardware's partitioning instead: the chain is cut into
/// `PARALLELISM = 360` sub-chains of `q = (N − K) / 360` checks (functional
/// unit `ℓ` owns lane `ℓ` of rows `0..q`, processed in ascending residue
/// order). The arithmetic per check is identical; only the message
/// *freshness at the 359 interior sub-chain boundaries* differs:
///
/// * **forward boundary, one iteration staler** — the forward message
///   entering row `0` of lane `ℓ` is the row `q − 1` output of lane
///   `ℓ − 1` *from the previous check phase* (each FU seeds its chain from
///   stored state; the sequential decoder would use the current sweep's
///   value);
/// * **backward boundary, one iteration fresher** — the backward message a
///   lane emits while processing row `0` is consumed by the preceding lane
///   at row `q − 1` of the *same* check phase (row `0` executes before row
///   `q − 1` in the ascending sweep; the sequential decoder's backward
///   messages are uniformly one iteration old).
///
/// The other `(N − K) − 359` forward and backward updates are computed with
/// identical operand values and identical saturating arithmetic. The
/// deviations therefore perturb convergence only through a `359 / (N − K)`
/// fraction of the chain (≈ 1% at Normal frames), which shifts rare
/// per-frame iteration counts near threshold but not decoded words — the
/// differential oracle enforces decoded-word agreement between this model
/// and the *sequential* `QuantizedZigzagDecoder`, and *bit-exactness* both
/// against the timed [`crate::HardwareDecoder`] (decisions and
/// per-iteration message digests, with or without an injected
/// [`RamFault`]) and against the software decoder in hardware-partitioned
/// mode ([`crate::hw_chain_partition`] replays this model's sub-chain
/// boundaries and per-check input ordering exactly). `DESIGN.md`
/// ("Chain-boundary semantics") carries the worked example.
#[derive(Debug, Clone)]
pub struct GoldenModel {
    params: CodeParams,
    rom: ConnectivityRom,
    schedule: CnSchedule,
    fu: FunctionalUnitArray,
    shuffle: ShuffleNetwork,
    max_iterations: usize,
    early_stop: bool,
    /// Modeled fault scenario, mirrored from [`crate::HardwareDecoder`]: the
    /// corruption applies at the same logical commit points (each word
    /// write-back plus the initial RAM contents, keyed on iteration and
    /// phase), so a faulted timed core must stay bit-exact against an
    /// equally-faulted golden model.
    scenario: FaultScenario,
    /// Message RAM, word-major: `ram[word * 360 + lane]`. Holds
    /// check-to-variable messages in information layout between iterations.
    ram: Vec<i32>,
    totals: Vec<i32>,
    block_in: Vec<i32>,
    block_out: Vec<i32>,
}

impl GoldenModel {
    /// Builds the model for a code with a given check-phase schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not match the code's ROM.
    pub fn new(
        code: &DvbS2Code,
        schedule: CnSchedule,
        quantizer: Quantizer,
        max_iterations: usize,
        early_stop: bool,
    ) -> Self {
        let params = *code.params();
        let rom = ConnectivityRom::build(&params, code.table());
        schedule.validate(&rom).expect("schedule must match the code's ROM");
        let words = rom.words();
        let max_block = params.hi.degree.max(params.check_degree);
        GoldenModel {
            fu: FunctionalUnitArray::new(&params, quantizer),
            shuffle: ShuffleNetwork::new(PARALLELISM),
            max_iterations,
            early_stop,
            scenario: FaultScenario::none(),
            ram: vec![0; words * PARALLELISM],
            totals: vec![0; params.n],
            block_in: vec![0; max_block * PARALLELISM],
            block_out: vec![0; max_block * PARALLELISM],
            params,
            rom,
            schedule,
        }
    }

    /// The code parameters.
    pub fn params(&self) -> &CodeParams {
        &self.params
    }

    /// The connectivity ROM.
    pub fn rom(&self) -> &ConnectivityRom {
        &self.rom
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &CnSchedule {
        &self.schedule
    }

    /// The message quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        self.fu.quantizer()
    }

    /// Quantizes float channel LLRs with the model's quantizer.
    pub fn quantize_channel(&self, llrs: &[f64]) -> Vec<i32> {
        let q = self.fu.quantizer();
        llrs.iter().map(|&l| q.quantize(l)).collect()
    }

    /// Injects (or clears) a single permanently stuck/flipping RAM word —
    /// the pre-scenario fault API, kept as a thin wrapper over
    /// [`GoldenModel::set_scenario`].
    ///
    /// # Panics
    ///
    /// Panics if the fault's word address is outside the message RAM.
    pub fn set_fault(&mut self, fault: Option<RamFault>) {
        self.set_scenario(fault.map(FaultScenario::from).unwrap_or_default());
    }

    /// Injects a complete [`FaultScenario`], mirroring
    /// [`crate::HardwareDecoder::set_scenario`]: the corruption is applied
    /// at exactly the same logical commit points (after every word
    /// write-back and on the initial RAM contents, keyed on iteration and
    /// phase — never physical cycles), so the timed core and this model must
    /// stay bit-exact under *identical* scenarios — the differential
    /// oracle's fault-differential contract.
    ///
    /// # Panics
    ///
    /// Panics if any fault addresses memory or units outside the model.
    pub fn set_scenario(&mut self, scenario: FaultScenario) {
        scenario.validate(self.rom.words());
        self.fu.set_fault(scenario.fu_fault());
        self.scenario = scenario;
    }

    /// The injected RAM fault, if the active scenario is a single permanent
    /// one (the only kind the pre-scenario API could express).
    pub fn fault(&self) -> Option<RamFault> {
        self.scenario.as_single_permanent()
    }

    /// The active fault scenario (empty when fault-free).
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Decodes one frame of quantized channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != N`.
    pub fn decode_quantized(&mut self, channel: &[i32]) -> DecodeResult {
        self.decode_inner(channel, None)
    }

    /// Decodes one frame and records a per-iteration digest of the complete
    /// message state (RAM plus parity forward/backward/boundary messages)
    /// after each check phase. The timed core's
    /// [`crate::HardwareDecoder::decode_quantized_traced`] must produce an
    /// identical trace — this is how the oracle enforces bit-exactness of
    /// *per-iteration messages*, not just final decisions.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != N`.
    pub fn decode_quantized_traced(
        &mut self,
        channel: &[i32],
        trace: &mut Vec<u64>,
    ) -> DecodeResult {
        trace.clear();
        self.decode_inner(channel, Some(trace))
    }

    fn decode_inner(&mut self, channel: &[i32], mut trace: Option<&mut Vec<u64>>) -> DecodeResult {
        assert_eq!(channel.len(), self.params.n, "LLR length mismatch");
        self.ram.fill(0);
        // A stuck cell is stuck from power-on, exactly as in the core.
        let quantizer = *self.fu.quantizer();
        self.scenario.corrupt_power_on(&mut self.ram, &quantizer);
        self.fu.reset();
        let mut iterations = 0;
        let mut converged = false;

        for iteration in 0..self.max_iterations {
            iterations += 1;
            self.information_phase(channel, iteration as u32);
            self.check_phase(channel, iteration as u32);
            if let Some(t) = trace.as_deref_mut() {
                t.push(message_digest(&self.ram, &self.fu));
            }
            // As in the timed core: the per-iteration totals sweep is only
            // observable through the early-stop test, so without early
            // stopping it runs once after the loop (bit-identical).
            if self.early_stop {
                self.compute_totals(channel);
                if self.syndrome_clean() {
                    converged = true;
                    break;
                }
            }
        }
        if !converged {
            if !self.early_stop {
                self.compute_totals(channel);
            }
            converged = self.syndrome_clean();
        }
        DecodeResult { bits: hard_decisions_int(&self.totals), iterations, converged }
    }

    /// Variable-node half-iteration: sequential word reads, write-back with
    /// the entry's cyclic shift (leaving the RAM in check layout).
    fn information_phase(&mut self, channel: &[i32], iteration: u32) {
        let p = PARALLELISM;
        let scenario = self.scenario;
        let quantizer = *self.fu.quantizer();
        let point = CommitPoint { iteration, phase: CommitPhase::Info };
        for g in 0..self.params.groups() {
            let base = self.rom.group_base(g);
            let d = self.params.group_degree(g);
            self.block_in[..d * p].copy_from_slice(&self.ram[base * p..(base + d) * p]);
            self.fu.process_vn_group(
                d,
                &channel[g * p..(g + 1) * p],
                &self.block_in[..d * p],
                &mut self.block_out[..d * p],
                None,
            );
            for i in 0..d {
                let shift = self.rom.entry(base + i).shift as usize;
                let word = &mut self.ram[(base + i) * p..(base + i + 1) * p];
                self.shuffle.rotate(&self.block_out[i * p..(i + 1) * p], shift, word);
                scenario.corrupt_word(base + i, word, &quantizer, point);
            }
        }
    }

    /// Check-node half-iteration: ascending residue rows, 360 parallel
    /// zigzag chains, write-back with the inverse shift (returning the RAM
    /// to information layout).
    fn check_phase(&mut self, channel: &[i32], iteration: u32) {
        let p = PARALLELISM;
        let row_len = self.rom.row_len();
        let scenario = self.scenario;
        let quantizer = *self.fu.quantizer();
        let point = CommitPoint { iteration, phase: CommitPhase::Check };
        self.fu.begin_check_phase();
        for r in 0..self.params.q {
            for i in 0..row_len {
                let w = self.schedule.row(r)[i] as usize;
                self.block_in[i * p..(i + 1) * p].copy_from_slice(&self.ram[w * p..(w + 1) * p]);
            }
            self.fu.process_cn_row(
                r,
                channel,
                &self.block_in[..row_len * p],
                &mut self.block_out[..row_len * p],
            );
            for i in 0..row_len {
                let w = self.schedule.row(r)[i] as usize;
                let shift = self.rom.entry(w).shift as usize;
                let inv = self.shuffle.inverse_shift(shift);
                let word = &mut self.ram[w * p..(w + 1) * p];
                self.shuffle.rotate(&self.block_out[i * p..(i + 1) * p], inv, word);
                scenario.corrupt_word(w, word, &quantizer, point);
            }
        }
        self.fu.end_check_phase();
    }

    /// A-posteriori totals after a check phase (model-only sweep; hardware
    /// folds this into the next information phase).
    fn compute_totals(&mut self, channel: &[i32]) {
        compute_totals(&self.params, &self.rom, &self.ram, &self.fu, channel, &mut self.totals);
    }

    /// Checks all parity equations on the current hard decisions using the
    /// ROM structure directly (no Tanner graph needed).
    fn syndrome_clean(&self) -> bool {
        syndrome_clean(&self.params, &self.rom, &self.totals)
    }
}

/// Computes all a-posteriori totals from an information-layout message RAM
/// and the functional units' parity state. Shared by the golden and timed
/// models.
pub(crate) fn compute_totals(
    params: &CodeParams,
    rom: &ConnectivityRom,
    ram: &[i32],
    fu: &FunctionalUnitArray,
    channel: &[i32],
    totals: &mut [i32],
) {
    let p = PARALLELISM;
    for g in 0..params.groups() {
        let base = rom.group_base(g);
        let d = params.group_degree(g);
        for t in 0..p {
            let m = g * p + t;
            let mut total = channel[m];
            for i in 0..d {
                total += ram[(base + i) * p + t];
            }
            totals[m] = total;
        }
    }
    fu.parity_totals(channel, totals);
}

/// Evaluates every parity equation on the hard decisions of `totals` using
/// the ROM structure directly.
pub(crate) fn syndrome_clean(params: &CodeParams, rom: &ConnectivityRom, totals: &[i32]) -> bool {
    let p = PARALLELISM;
    let k = params.k;
    let q_rows = params.q;
    for j in 0..params.n_check {
        let r = j % q_rows;
        let u = j / q_rows;
        let mut parity = totals[k + j] < 0;
        if j > 0 {
            parity ^= totals[k + j - 1] < 0;
        }
        for &w in rom.row(r) {
            let e = rom.entry(w as usize);
            let t = (u + p - e.shift as usize) % p;
            let m = e.group as usize * p + t;
            parity ^= totals[m] < 0;
        }
        if parity {
            return false;
        }
    }
    true
}

/// Folds one slice of message values into an FNV-1a-style digest. Collisions
/// only matter against *accidental* divergence here (differential check, not
/// an adversary), so hashing each i32 as one unit is plenty.
fn fold_digest(mut h: u64, vals: &[i32]) -> u64 {
    for &v in vals {
        h ^= v as u32 as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Digest of the complete post-check-phase message state: the message RAM
/// plus the functional units' backward/forward/boundary parity messages.
/// Shared by the golden and timed models' traced decode entry points; equal
/// digests every iteration is the oracle's definition of "bit-exact
/// per-iteration messages".
pub(crate) fn message_digest(ram: &[i32], fu: &FunctionalUnitArray) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325; // FNV-1a offset basis
    h = fold_digest(h, ram);
    let (backward, forward, boundary) = fu.parity_state();
    h = fold_digest(h, backward);
    h = fold_digest(h, forward);
    fold_digest(h, boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_decoder::test_support::{llrs_for_codeword, noisy_llrs};
    use dvbs2_decoder::{Decoder, DecoderConfig, QuantizedZigzagDecoder};
    use dvbs2_ldpc::{BitVec, CodeRate, FrameSize};
    use std::sync::Arc;

    fn model(code: &DvbS2Code) -> GoldenModel {
        let rom = ConnectivityRom::build(code.params(), code.table());
        GoldenModel::new(code, CnSchedule::natural(&rom), Quantizer::paper_6bit(), 30, true)
    }

    fn short_code() -> DvbS2Code {
        DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap()
    }

    #[test]
    fn noiseless_codeword_decodes_in_one_iteration() {
        let code = short_code();
        let mut m = model(&code);
        let enc = code.encoder().unwrap();
        let msg = BitVec::from_bools((0..code.params().k).map(|i| i % 3 == 0));
        let cw = enc.encode(&msg).unwrap();
        let channel = m.quantize_channel(&llrs_for_codeword(&cw, 5.0));
        let out = m.decode_quantized(&channel);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.bits, cw);
    }

    #[test]
    fn corrects_noisy_frames() {
        let code = short_code();
        let mut m = model(&code);
        for seed in 0..3 {
            let (cw, llrs) = noisy_llrs(&code, 3.2, 900 + seed);
            let channel = m.quantize_channel(&llrs);
            let out = m.decode_quantized(&channel);
            assert!(out.converged, "seed {seed}");
            assert_eq!(out.bits, cw, "seed {seed}");
        }
    }

    #[test]
    fn matches_ideal_quantized_decoder_on_decoded_words() {
        // The partitioned chains deviate from the ideal zigzag only at the
        // 360 chain boundaries; decoded codewords must agree.
        let code = short_code();
        let mut m = model(&code);
        let graph = Arc::new(code.tanner_graph());
        let mut ideal =
            QuantizedZigzagDecoder::new(graph, Quantizer::paper_6bit(), DecoderConfig::default());
        for seed in 0..3 {
            let (cw, llrs) = noisy_llrs(&code, 3.4, 800 + seed);
            let channel = m.quantize_channel(&llrs);
            let golden_out = m.decode_quantized(&channel);
            let ideal_out = ideal.decode(&llrs);
            assert_eq!(golden_out.bits, cw, "seed {seed}");
            assert_eq!(ideal_out.bits, cw, "seed {seed}");
        }
    }

    #[test]
    fn decode_is_deterministic_and_reusable() {
        let code = short_code();
        let mut m = model(&code);
        let (_, llrs) = noisy_llrs(&code, 2.8, 55);
        let channel = m.quantize_channel(&llrs);
        let a = m.decode_quantized(&channel);
        let b = m.decode_quantized(&channel);
        assert_eq!(a, b);
    }

    #[test]
    fn annealed_schedule_gives_same_result_as_natural() {
        // Message order within a check changes only LSB rounding paths; the
        // decoded word of a decodable frame must not change.
        use crate::anneal::{optimize_schedule, AnnealOptions};
        use crate::memory::MemoryConfig;
        let code = short_code();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let annealed = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 300, ..AnnealOptions::default() },
        )
        .schedule;
        let mut natural = model(&code);
        let mut optimized = GoldenModel::new(&code, annealed, Quantizer::paper_6bit(), 30, true);
        let (cw, llrs) = noisy_llrs(&code, 3.4, 321);
        let channel = natural.quantize_channel(&llrs);
        let a = natural.decode_quantized(&channel);
        let b = optimized.decode_quantized(&channel);
        assert_eq!(a.bits, cw);
        assert_eq!(b.bits, cw);
    }

    #[test]
    fn injected_fault_changes_message_state() {
        // A stuck word at full magnitude must perturb the message digests;
        // clearing the fault restores the clean trajectory.
        let code = short_code();
        let mut m = model(&code);
        let (_, llrs) = noisy_llrs(&code, 2.8, 606);
        let channel = m.quantize_channel(&llrs);
        let mut clean_trace = Vec::new();
        let clean = m.decode_quantized_traced(&channel, &mut clean_trace);
        m.set_fault(Some(crate::RamFault::StuckWord { word: 2, value: 31 }));
        let mut fault_trace = Vec::new();
        let faulted = m.decode_quantized_traced(&channel, &mut fault_trace);
        assert_ne!(clean_trace.first(), fault_trace.first());
        assert_eq!(m.fault(), Some(crate::RamFault::StuckWord { word: 2, value: 31 }));
        let _ = faulted;
        m.set_fault(None);
        let mut again = Vec::new();
        let re = m.decode_quantized_traced(&channel, &mut again);
        assert_eq!(re, clean);
        assert_eq!(again, clean_trace);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_word_must_be_in_ram() {
        let code = short_code();
        let mut m = model(&code);
        m.set_fault(Some(crate::RamFault::StuckWord { word: usize::MAX, value: 0 }));
    }

    #[test]
    fn works_for_normal_frames() {
        let code = DvbS2Code::new(CodeRate::R9_10, FrameSize::Normal).unwrap();
        let mut m = model(&code);
        let (cw, llrs) = noisy_llrs(&code, 4.6, 17);
        let channel = m.quantize_channel(&llrs);
        let out = m.decode_quantized(&channel);
        assert!(out.converged);
        assert_eq!(out.bits, cw);
    }
}
