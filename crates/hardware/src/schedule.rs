//! Check-phase read schedules.
//!
//! The check phase processes residue rows `r = 0 .. q-1` **in ascending
//! order** — each functional unit's zigzag forward register chains its `q`
//! consecutive check nodes, so rows cannot be reordered. Within a row,
//! however, the `k-2` information messages of a check node are commutative
//! (the paper exploits exactly this), so their read order is free: this is
//! the degree of freedom the simulated-annealing optimizer searches to
//! avoid RAM bank conflicts.

use crate::rom::ConnectivityRom;
use std::fmt;

/// Error returned when a schedule does not match its ROM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidScheduleError {
    detail: String,
}

impl fmt::Display for InvalidScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid check-phase schedule: {}", self.detail)
    }
}

impl std::error::Error for InvalidScheduleError {}

/// A check-phase read order: for each residue row, a permutation of that
/// row's ROM entries (word addresses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnSchedule {
    rows: Vec<Vec<u32>>,
}

impl CnSchedule {
    /// The unoptimized baseline: rows in ROM order (group-major within each
    /// residue class).
    pub fn natural(rom: &ConnectivityRom) -> Self {
        CnSchedule { rows: (0..rom.row_count()).map(|r| rom.row(r).to_vec()).collect() }
    }

    /// Builds a schedule from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScheduleError`] unless each row `r` is a permutation
    /// of the ROM's residue-`r` entries.
    pub fn from_rows(
        rom: &ConnectivityRom,
        rows: Vec<Vec<u32>>,
    ) -> Result<Self, InvalidScheduleError> {
        let schedule = CnSchedule { rows };
        schedule.validate(rom)?;
        Ok(schedule)
    }

    /// Checks this schedule against a ROM.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScheduleError`] describing the first mismatch.
    pub fn validate(&self, rom: &ConnectivityRom) -> Result<(), InvalidScheduleError> {
        if self.rows.len() != rom.row_count() {
            return Err(InvalidScheduleError {
                detail: format!("expected {} rows, got {}", rom.row_count(), self.rows.len()),
            });
        }
        for (r, row) in self.rows.iter().enumerate() {
            let mut want: Vec<u32> = rom.row(r).to_vec();
            let mut got = row.clone();
            want.sort_unstable();
            got.sort_unstable();
            if want != got {
                return Err(InvalidScheduleError {
                    detail: format!("row {r} is not a permutation of the ROM row"),
                });
            }
        }
        Ok(())
    }

    /// The per-row read orders.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Read order of residue row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.rows[r]
    }

    /// Messages read per row (`check_degree - 2`).
    pub fn row_len(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// The flattened word-address read sequence of the whole check phase.
    pub fn read_sequence(&self) -> Vec<u32> {
        self.rows.iter().flatten().copied().collect()
    }

    /// Swaps two positions within a row (the annealing move).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn swap_within_row(&mut self, r: usize, i: usize, j: usize) {
        self.rows[r].swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};

    fn rom() -> ConnectivityRom {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        ConnectivityRom::build(code.params(), code.table())
    }

    #[test]
    fn natural_schedule_validates() {
        let rom = rom();
        let s = CnSchedule::natural(&rom);
        s.validate(&rom).unwrap();
        assert_eq!(s.read_sequence().len(), rom.words());
    }

    #[test]
    fn swaps_keep_schedule_valid() {
        let rom = rom();
        let mut s = CnSchedule::natural(&rom);
        s.swap_within_row(0, 0, 1);
        s.swap_within_row(3, 2, 0);
        s.validate(&rom).unwrap();
    }

    #[test]
    fn cross_row_moves_are_rejected() {
        let rom = rom();
        let mut rows: Vec<Vec<u32>> = CnSchedule::natural(&rom).rows().to_vec();
        let moved = rows[0].pop().unwrap();
        rows[1].push(moved);
        assert!(CnSchedule::from_rows(&rom, rows).is_err());
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let rom = rom();
        let mut rows: Vec<Vec<u32>> = CnSchedule::natural(&rom).rows().to_vec();
        rows[0][1] = rows[0][0];
        assert!(CnSchedule::from_rows(&rom, rows).is_err());
    }

    #[test]
    fn read_sequence_is_row_major() {
        let rom = rom();
        let s = CnSchedule::natural(&rom);
        let seq = s.read_sequence();
        let len = s.row_len();
        for r in 0..rom.row_count() {
            assert_eq!(&seq[r * len..(r + 1) * len], s.row(r));
        }
    }
}
