//! Golden test-vector generation for RTL verification.
//!
//! An IP core ships with stimulus/response vectors so an RTL implementation
//! can be verified against the golden model without running the full system.
//! [`TestVectorSet::generate`] produces frames of quantized channel LLRs
//! together with the golden model's expected hard decisions and iteration
//! counts, and serializes them to a simple line-oriented text format that a
//! VHDL/Verilog testbench (or this crate's own parser) can consume.

use crate::golden::GoldenModel;
use crate::rom::ConnectivityRom;
use crate::schedule::CnSchedule;
use dvbs2_decoder::Quantizer;
use dvbs2_ldpc::{BitVec, CodeRate, DvbS2Code, FrameSize};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One stimulus/response pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorFrame {
    /// Quantized channel LLRs (length `N`).
    pub channel: Vec<i32>,
    /// Expected hard decisions (length `N`).
    pub expected_bits: BitVec,
    /// Expected iteration count.
    pub expected_iterations: usize,
    /// Whether the golden model converged.
    pub converged: bool,
}

/// A set of golden vectors for one code configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestVectorSet {
    /// Code rate the vectors target.
    pub rate: CodeRate,
    /// Frame size.
    pub frame: FrameSize,
    /// Message quantizer width.
    pub quantizer_bits: u32,
    /// Generation seed (vectors are reproducible).
    pub seed: u64,
    /// The frames.
    pub frames: Vec<VectorFrame>,
}

/// Error from [`TestVectorSet::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVectorError {
    line: usize,
    detail: String,
}

impl fmt::Display for ParseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "test-vector parse error at line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseVectorError {}

impl TestVectorSet {
    /// Generates `n_frames` vectors by passing random codewords through a
    /// BPSK/AWGN channel at `ebn0_db` and running the golden model with the
    /// natural schedule.
    ///
    /// # Panics
    ///
    /// Panics if the code cannot be constructed (9/10 short frames).
    pub fn generate(
        rate: CodeRate,
        frame: FrameSize,
        quantizer: Quantizer,
        n_frames: usize,
        ebn0_db: f64,
        seed: u64,
    ) -> Self {
        let code = DvbS2Code::new(rate, frame).expect("valid rate/frame combination");
        let params = *code.params();
        let rom = ConnectivityRom::build(&params, code.table());
        let mut golden = GoldenModel::new(&code, CnSchedule::natural(&rom), quantizer, 30, true);
        let encoder = code.encoder().expect("encoder for generated table");
        let mut rng = SmallRng::seed_from_u64(seed);
        let rate_f = params.k as f64 / params.n as f64;
        let sigma2 = 1.0 / (2.0 * rate_f * 10f64.powf(ebn0_db / 10.0));
        let sigma = sigma2.sqrt();

        let frames = (0..n_frames)
            .map(|_| {
                let msg = encoder.random_message(&mut rng);
                let cw = encoder.encode(&msg).expect("message has length K");
                let channel: Vec<i32> = cw
                    .iter()
                    .map(|b| {
                        let x = if b { -1.0 } else { 1.0 };
                        // Box–Muller, cosine branch.
                        let u1: f64 = 1.0 - rng.random::<f64>();
                        let u2: f64 = rng.random::<f64>();
                        let noise = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        quantizer.quantize(2.0 * (x + sigma * noise) / sigma2)
                    })
                    .collect();
                let out = golden.decode_quantized(&channel);
                VectorFrame {
                    channel,
                    expected_bits: out.bits,
                    expected_iterations: out.iterations,
                    converged: out.converged,
                }
            })
            .collect();
        TestVectorSet { rate, frame, quantizer_bits: quantizer.bits(), seed, frames }
    }

    /// Serializes to the line-oriented interchange format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dvbs2-vectors rate={} frame={} bits={} seed={}\n",
            self.rate,
            match self.frame {
                FrameSize::Normal => "normal",
                FrameSize::Short => "short",
            },
            self.quantizer_bits,
            self.seed
        ));
        for f in &self.frames {
            out.push_str("frame\n");
            out.push_str("llr");
            for &v in &f.channel {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
            out.push_str("bits ");
            out.extend(f.expected_bits.iter().map(|b| if b { '1' } else { '0' }));
            out.push('\n');
            out.push_str(&format!("iters {} converged {}\n", f.expected_iterations, f.converged));
        }
        out
    }

    /// Parses the interchange format back.
    ///
    /// # Errors
    ///
    /// Returns [`ParseVectorError`] on any malformed line.
    pub fn parse(text: &str) -> Result<Self, ParseVectorError> {
        let err = |line: usize, detail: &str| ParseVectorError { line, detail: detail.into() };
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
        let mut rate = None;
        let mut frame = None;
        let mut bits = None;
        let mut seed = None;
        for field in header.split_whitespace().skip(1) {
            let (key, value) =
                field.split_once('=').ok_or_else(|| err(ln + 1, "malformed header field"))?;
            match key {
                "rate" => rate = value.parse::<CodeRate>().ok(),
                "frame" => {
                    frame = match value {
                        "normal" => Some(FrameSize::Normal),
                        "short" => Some(FrameSize::Short),
                        _ => None,
                    }
                }
                "bits" => bits = value.parse::<u32>().ok(),
                "seed" => seed = value.parse::<u64>().ok(),
                _ => return Err(err(ln + 1, "unknown header field")),
            }
        }
        let (rate, frame, bits, seed) = match (rate, frame, bits, seed) {
            (Some(r), Some(f), Some(b), Some(s)) => (r, f, b, s),
            _ => return Err(err(ln + 1, "incomplete header")),
        };

        let mut frames = Vec::new();
        let mut current: Option<(Vec<i32>, Option<BitVec>)> = None;
        for (ln, line) in lines {
            let ln = ln + 1;
            if line == "frame" {
                if current.is_some() {
                    return Err(err(ln, "unterminated previous frame"));
                }
                current = Some((Vec::new(), None));
            } else if let Some(rest) = line.strip_prefix("llr") {
                let cur = current.as_mut().ok_or_else(|| err(ln, "llr outside frame"))?;
                cur.0 = rest
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(ln, "bad LLR value"))?;
            } else if let Some(rest) = line.strip_prefix("bits ") {
                let cur = current.as_mut().ok_or_else(|| err(ln, "bits outside frame"))?;
                cur.1 = Some(rest.chars().map(|c| c == '1').collect());
            } else if let Some(rest) = line.strip_prefix("iters ") {
                let (channel, bits_vec) =
                    current.take().ok_or_else(|| err(ln, "iters outside frame"))?;
                let mut parts = rest.split_whitespace();
                let iters: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "bad iteration count"))?;
                let converged = match (parts.next(), parts.next()) {
                    (Some("converged"), Some(v)) => {
                        v.parse::<bool>().map_err(|_| err(ln, "bad converged flag"))?
                    }
                    _ => return Err(err(ln, "missing converged flag")),
                };
                frames.push(VectorFrame {
                    channel,
                    expected_bits: bits_vec.ok_or_else(|| err(ln, "missing bits line"))?,
                    expected_iterations: iters,
                    converged,
                });
            } else if !line.trim().is_empty() {
                return Err(err(ln, "unrecognized line"));
            }
        }
        if current.is_some() {
            return Err(err(0, "unterminated final frame"));
        }
        Ok(TestVectorSet { rate, frame, quantizer_bits: bits, seed, frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreConfig, HardwareDecoder};

    fn small_set() -> TestVectorSet {
        TestVectorSet::generate(
            CodeRate::R1_2,
            FrameSize::Short,
            Quantizer::paper_6bit(),
            2,
            3.2,
            42,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small_set(), small_set());
    }

    #[test]
    fn text_round_trips() {
        let set = small_set();
        let text = set.to_text();
        let parsed = TestVectorSet::parse(&text).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn vectors_replay_on_the_hardware_core() {
        // The point of the vectors: an implementation must reproduce them.
        let set = small_set();
        let code = DvbS2Code::new(set.rate, set.frame).unwrap();
        let mut hw = HardwareDecoder::with_natural_schedule(
            &code,
            CoreConfig { early_stop: true, ..CoreConfig::default() },
        );
        for (i, frame) in set.frames.iter().enumerate() {
            let out = hw.decode_quantized(&frame.channel);
            assert_eq!(out.result.bits, frame.expected_bits, "frame {i}");
            assert_eq!(out.result.iterations, frame.expected_iterations, "frame {i}");
            assert_eq!(out.result.converged, frame.converged, "frame {i}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TestVectorSet::parse("").is_err());
        assert!(TestVectorSet::parse("dvbs2-vectors rate=1/2\n").is_err());
        let mut text = small_set().to_text();
        text.push_str("junk line\n");
        assert!(TestVectorSet::parse(&text).is_err());
    }
}
