//! The analytic throughput model — Eq. 7/8 of the paper.
//!
//! ```text
//! T = I / ( C/P_IO + It · 2 · (E_IN/P + T_latency) ) · f_clk        (Eq. 8)
//! ```
//!
//! with `I = K` information bits, `C = N` channel values read at `P_IO = 10`
//! per cycle, `It = 30` iterations, `P = 360` functional units, and
//! `T_latency` the pipeline/drain overhead per half-iteration. The
//! `throughput_eq8` bench tabulates this against the cycle counts measured
//! by [`crate::HardwareDecoder`] and the paper's 255 Mbit/s requirement.

use crate::tech::Technology;
use dvbs2_ldpc::{CodeParams, PARALLELISM};

/// Parameters of the Eq. 8 throughput computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// Clock frequency in MHz (paper: 270 MHz worst case).
    pub clock_mhz: f64,
    /// Decoder iterations (paper: 30).
    pub iterations: usize,
    /// Parallel functional units (360).
    pub p: usize,
    /// Channel values accepted per I/O cycle (10).
    pub p_io: usize,
    /// Per-half-iteration latency `T_latency` in cycles (functional-unit
    /// pipeline depth plus the write-back drain).
    pub latency: usize,
}

impl ThroughputModel {
    /// The paper's operating point on a given technology.
    pub fn paper(tech: &Technology) -> Self {
        ThroughputModel {
            clock_mhz: tech.max_clock_mhz,
            iterations: 30,
            p: PARALLELISM,
            p_io: 10,
            latency: 10,
        }
    }

    /// Decoding cycles for one frame (the denominator of Eq. 8 without the
    /// clock).
    pub fn cycles(&self, params: &CodeParams) -> usize {
        let half_iteration = params.e_in() / self.p + self.latency;
        params.n.div_ceil(self.p_io) + self.iterations * 2 * half_iteration
    }

    /// Information throughput in Mbit/s (Eq. 8).
    ///
    /// ```
    /// use dvbs2_hardware::{ThroughputModel, ST_0_13_UM};
    /// use dvbs2_ldpc::{CodeParams, CodeRate, FrameSize};
    /// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
    /// let params = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
    /// let model = ThroughputModel::paper(&ST_0_13_UM);
    /// let t = model.throughput_mbps(&params);
    /// assert!(t > 250.0, "paper claims 255 Mbit/s at R = 1/2: {t}");
    /// # Ok(())
    /// # }
    /// ```
    pub fn throughput_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.cycles(params) as f64 * self.clock_mhz
    }

    /// Coded (channel-symbol) throughput in Mbit/s.
    pub fn coded_throughput_mbps(&self, params: &CodeParams) -> f64 {
        params.n as f64 / self.cycles(params) as f64 * self.clock_mhz
    }

    /// Cycles per frame when frame I/O fully overlaps decoding (a
    /// double-buffered channel RAM loads frame `n+1` while frame `n`
    /// decodes — the paper's Eq. 8 serializes the I/O term instead).
    pub fn cycles_overlapped(&self, params: &CodeParams) -> usize {
        let decode = self.iterations * 2 * (params.e_in() / self.p + self.latency);
        decode.max(params.n.div_ceil(self.p_io))
    }

    /// Information throughput with overlapped I/O in Mbit/s.
    pub fn throughput_overlapped_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.cycles_overlapped(params) as f64 * self.clock_mhz
    }

    /// Cycles per frame at a *measured* mean iteration count (early
    /// termination): the decoder spends `avg_iterations` on average, so
    /// sustained throughput rises accordingly.
    pub fn cycles_at_iterations(&self, params: &CodeParams, avg_iterations: f64) -> f64 {
        params.n.div_ceil(self.p_io) as f64
            + avg_iterations * 2.0 * (params.e_in() / self.p + self.latency) as f64
    }

    /// Frame decode time in microseconds.
    pub fn frame_time_us(&self, params: &CodeParams) -> f64 {
        self.cycles(params) as f64 / self.clock_mhz
    }

    /// Inverts Eq. 8: the largest iteration cap (within `1..=
    /// self.iterations`) whose modeled throughput still reaches
    /// `target_mbps`, or `None` when even a single iteration cannot.
    ///
    /// This is the paper's Table 3 trade-off run backwards — given a demanded
    /// service rate, how many iterations can the decoder afford? — and is
    /// what the streaming pipeline's admission control uses to shed load by
    /// lowering the cap before it would have to drop frames. Throughput is
    /// monotonically decreasing in the iteration count, so the answer is the
    /// first cap that fits, scanning downward from the configured maximum.
    pub fn iterations_for_throughput(
        &self,
        params: &CodeParams,
        target_mbps: f64,
    ) -> Option<usize> {
        (1..=self.iterations).rev().find(|&it| {
            ThroughputModel { iterations: it, ..*self }.throughput_mbps(params) >= target_mbps
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::ST_0_13_UM;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    fn model() -> ThroughputModel {
        ThroughputModel::paper(&ST_0_13_UM)
    }

    fn params(rate: CodeRate) -> CodeParams {
        CodeParams::new(rate, FrameSize::Normal).unwrap()
    }

    #[test]
    fn r12_reaches_the_paper_requirement() {
        // The 255 Mbit/s base-station requirement at R = 1/2, 30 iterations.
        let t = model().throughput_mbps(&params(CodeRate::R1_2));
        assert!((253.0..262.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn high_rates_exceed_low_rates() {
        let lo = model().throughput_mbps(&params(CodeRate::R1_4));
        let hi = model().throughput_mbps(&params(CodeRate::R9_10));
        assert!(hi > lo);
        assert!(hi > 400.0, "R 9/10 should exceed 400 Mbit/s: {hi}");
    }

    #[test]
    fn cycles_are_dominated_by_iterations() {
        let p = params(CodeRate::R1_2);
        let m = model();
        let io = p.n.div_ceil(m.p_io);
        assert!(m.cycles(&p) > 4 * io);
    }

    #[test]
    fn fewer_iterations_mean_proportionally_more_throughput() {
        let p = params(CodeRate::R1_2);
        let base = model();
        let fast = ThroughputModel { iterations: 15, ..base };
        // Sub-linear: the I/O cycles do not shrink with iterations.
        let ratio = fast.throughput_mbps(&p) / base.throughput_mbps(&p);
        assert!(ratio > 1.6 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn overlapped_io_raises_throughput() {
        let p = params(CodeRate::R1_2);
        let m = model();
        assert!(m.cycles_overlapped(&p) < m.cycles(&p));
        assert!(m.throughput_overlapped_mbps(&p) > m.throughput_mbps(&p));
        // Decode dominates at 30 iterations, so the gain is the I/O term.
        assert_eq!(m.cycles_overlapped(&p), m.cycles(&p) - p.n.div_ceil(m.p_io));
    }

    #[test]
    fn early_termination_scales_cycles() {
        let p = params(CodeRate::R1_2);
        let m = model();
        let full = m.cycles_at_iterations(&p, 30.0);
        let half = m.cycles_at_iterations(&p, 15.0);
        assert!((full - m.cycles(&p) as f64).abs() < 1e-9);
        assert!(half < full);
    }

    #[test]
    fn iteration_budget_inverts_the_throughput_curve() {
        let p = params(CodeRate::R1_2);
        let m = model();
        // At the paper's own operating point the full 30 iterations fit.
        let t30 = m.throughput_mbps(&p);
        assert_eq!(m.iterations_for_throughput(&p, t30), Some(30));
        // Demanding more forces a lower cap, and the returned cap is the
        // *largest* one that meets the target.
        let cap = m.iterations_for_throughput(&p, 1.5 * t30).expect("reachable");
        assert!(cap < 30, "cap {cap}");
        assert!(ThroughputModel { iterations: cap, ..m }.throughput_mbps(&p) >= 1.5 * t30);
        assert!(ThroughputModel { iterations: cap + 1, ..m }.throughput_mbps(&p) < 1.5 * t30);
        // An impossible demand is reported, not silently clamped.
        let ceiling = ThroughputModel { iterations: 1, ..m }.throughput_mbps(&p);
        assert_eq!(m.iterations_for_throughput(&p, ceiling * 1.01), None);
        // A trivial demand keeps the full budget.
        assert_eq!(m.iterations_for_throughput(&p, 1.0), Some(30));
    }

    #[test]
    fn frame_time_is_microseconds_scale() {
        // ~34000 cycles at 270 MHz is ~126 us.
        let t = model().frame_time_us(&params(CodeRate::R1_2));
        assert!((100.0..200.0).contains(&t), "{t}");
    }
}
