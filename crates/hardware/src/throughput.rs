//! The analytic throughput model — Eq. 7/8 of the paper.
//!
//! ```text
//! T = I / ( C/P_IO + It · 2 · (E_IN/P + T_latency) ) · f_clk        (Eq. 8)
//! ```
//!
//! with `I = K` information bits, `C = N` channel values read at `P_IO = 10`
//! per cycle, `It = 30` iterations, `P = 360` functional units, and
//! `T_latency` the pipeline/drain overhead per half-iteration. The
//! `throughput_eq8` bench tabulates this against the cycle counts measured
//! by [`crate::HardwareDecoder`] and the paper's 255 Mbit/s requirement.

use crate::core::CycleBreakdown;
use crate::tech::Technology;
use dvbs2_ldpc::{CodeParams, PARALLELISM};

/// Parameters of the Eq. 8 throughput computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// Clock frequency in MHz (paper: 270 MHz worst case).
    pub clock_mhz: f64,
    /// Decoder iterations (paper: 30).
    pub iterations: usize,
    /// Parallel functional units (360).
    pub p: usize,
    /// Channel values accepted per I/O cycle (10).
    pub p_io: usize,
    /// Per-half-iteration latency `T_latency` in cycles (functional-unit
    /// pipeline depth plus the write-back drain).
    pub latency: usize,
}

impl ThroughputModel {
    /// The paper's operating point on a given technology.
    pub fn paper(tech: &Technology) -> Self {
        ThroughputModel {
            clock_mhz: tech.max_clock_mhz,
            iterations: 30,
            p: PARALLELISM,
            p_io: 10,
            latency: 10,
        }
    }

    /// Decoding cycles for one frame (the denominator of Eq. 8 without the
    /// clock).
    pub fn cycles(&self, params: &CodeParams) -> usize {
        let half_iteration = params.e_in() / self.p + self.latency;
        params.n.div_ceil(self.p_io) + self.iterations * 2 * half_iteration
    }

    /// Information throughput in Mbit/s (Eq. 8).
    ///
    /// ```
    /// use dvbs2_hardware::{ThroughputModel, ST_0_13_UM};
    /// use dvbs2_ldpc::{CodeParams, CodeRate, FrameSize};
    /// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
    /// let params = CodeParams::new(CodeRate::R1_2, FrameSize::Normal)?;
    /// let model = ThroughputModel::paper(&ST_0_13_UM);
    /// let t = model.throughput_mbps(&params);
    /// assert!(t > 250.0, "paper claims 255 Mbit/s at R = 1/2: {t}");
    /// # Ok(())
    /// # }
    /// ```
    pub fn throughput_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.cycles(params) as f64 * self.clock_mhz
    }

    /// Coded (channel-symbol) throughput in Mbit/s.
    pub fn coded_throughput_mbps(&self, params: &CodeParams) -> f64 {
        params.n as f64 / self.cycles(params) as f64 * self.clock_mhz
    }

    /// Cycles per frame when frame I/O fully overlaps decoding (a
    /// double-buffered channel RAM loads frame `n+1` while frame `n`
    /// decodes — the paper's Eq. 8 serializes the I/O term instead).
    pub fn cycles_overlapped(&self, params: &CodeParams) -> usize {
        let decode = self.iterations * 2 * (params.e_in() / self.p + self.latency);
        decode.max(params.n.div_ceil(self.p_io))
    }

    /// Information throughput with overlapped I/O in Mbit/s.
    pub fn throughput_overlapped_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.cycles_overlapped(params) as f64 * self.clock_mhz
    }

    /// Cycles per frame at a *measured* mean iteration count (early
    /// termination): the decoder spends `avg_iterations` on average, so
    /// sustained throughput rises accordingly.
    pub fn cycles_at_iterations(&self, params: &CodeParams, avg_iterations: f64) -> f64 {
        params.n.div_ceil(self.p_io) as f64
            + avg_iterations * 2.0 * (params.e_in() / self.p + self.latency) as f64
    }

    /// Frame decode time in microseconds.
    pub fn frame_time_us(&self, params: &CodeParams) -> f64 {
        self.cycles(params) as f64 / self.clock_mhz
    }

    /// Inverts Eq. 8: the largest iteration cap (within `1..=
    /// self.iterations`) whose modeled throughput still reaches
    /// `target_mbps`, or `None` when even a single iteration cannot.
    ///
    /// This is the paper's Table 3 trade-off run backwards — given a demanded
    /// service rate, how many iterations can the decoder afford? — and is
    /// what the streaming pipeline's admission control uses to shed load by
    /// lowering the cap before it would have to drop frames. Throughput is
    /// monotonically decreasing in the iteration count, so the answer is the
    /// first cap that fits, scanning downward from the configured maximum.
    pub fn iterations_for_throughput(
        &self,
        params: &CodeParams,
        target_mbps: f64,
    ) -> Option<usize> {
        (1..=self.iterations).rev().find(|&it| {
            ThroughputModel { iterations: it, ..*self }.throughput_mbps(params) >= target_mbps
        })
    }
}

/// Eq. 8 extended to the P-core [`crate::DecoderFabric`].
///
/// The fabric serializes frame I/O on one shared bus (`P_IO` values per
/// granted cycle) while P cores decode in parallel, so the amortized cost of
/// a frame in the synchronized steady state is
///
/// ```text
/// C_frame = C/P_IO + ( It · 2 · (E_IN/P + T_latency) + 2·T_link ) / P_cores
///           + T_arb                                           (extended Eq. 8)
/// ```
///
/// — the I/O term no longer amortizes (every frame crosses the one bus), the
/// decode term divides across cores, each frame pays the link twice (channel
/// values in, result out), and `T_arb` absorbs fitted arbitration residue.
/// `k · f_clk / (C/P_IO)` is therefore a hard I/O ceiling: past the core
/// count where decode hides behind the bus, only a wider front end helps.
///
/// The flat `T_latency` of Eq. 8 is an approximation of the measured
/// pipeline/drain overhead; [`FabricModel::calibrated`] replaces it with the
/// per-iteration cycle count measured by the cycle-accurate core, after
/// which the model must agree with [`crate::DecoderFabric`] *exactly* (the
/// `throughput_eq8` bench and the fabric tests pin zero error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricModel {
    /// The single-core Eq. 8 operating point.
    pub core: ThroughputModel,
    /// Decoder cores behind the shared front end.
    pub cores: usize,
    /// One-way link latency between the front end and a core, in cycles.
    pub link_latency: usize,
    /// Measured decode cycles per iteration (info + check phases including
    /// drains), from [`crate::CycleBreakdown`]. `None` falls back to the
    /// paper's flat `2 · (E_IN/P + T_latency)` term.
    pub iteration_cycles: Option<usize>,
    /// Fitted per-frame arbitration overhead in cycles.
    pub arbitration_overhead: f64,
}

impl FabricModel {
    /// The paper's operating point scaled to `cores`, with the default
    /// fabric link of 2 cycles.
    pub fn paper(tech: &Technology, cores: usize) -> Self {
        FabricModel {
            core: ThroughputModel::paper(tech),
            cores,
            link_latency: 2,
            iteration_cycles: None,
            arbitration_overhead: 0.0,
        }
    }

    /// The degenerate single-core, zero-link fabric — must reproduce the
    /// plain Eq. 8 cycle count.
    pub fn single(tech: &Technology) -> Self {
        FabricModel { cores: 1, link_latency: 0, ..FabricModel::paper(tech, 1) }
    }

    /// Replaces the flat `T_latency` term with the decode cycles per
    /// iteration measured by the cycle-accurate core.
    ///
    /// # Panics
    ///
    /// Panics if the breakdown's decode cycles are not an exact multiple of
    /// its iteration count — the core's phases are data-independent, so
    /// every iteration costs the same and an indivisible total means the
    /// breakdown does not belong to a fixed-iteration decode.
    pub fn calibrated(mut self, measured: &CycleBreakdown) -> Self {
        let decode = measured.info_phase_cycles + measured.check_phase_cycles;
        assert!(measured.iterations > 0, "calibration needs at least one iteration");
        assert_eq!(
            decode % measured.iterations,
            0,
            "decode cycles must divide evenly across iterations"
        );
        self.iteration_cycles = Some(decode / measured.iterations);
        self
    }

    /// The same model with a different front-end width.
    pub fn with_p_io(mut self, p_io: usize) -> Self {
        self.core.p_io = p_io;
        self
    }

    /// The same model with a different iteration cap.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.core.iterations = iterations;
        self
    }

    /// The same model with a different core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Bus cycles to load one frame.
    pub fn io_cycles(&self, params: &CodeParams) -> usize {
        params.n.div_ceil(self.core.p_io)
    }

    /// Decode cycles for one frame (no I/O, no links).
    pub fn decode_cycles(&self, params: &CodeParams) -> usize {
        match self.iteration_cycles {
            Some(c) => self.core.iterations * c,
            None => self.core.iterations * 2 * (params.e_in() / self.core.p + self.core.latency),
        }
    }

    /// Uncontended fabric cycles for one frame: load + decode + the link
    /// crossed twice. With `cores = 1, link = 0` (see [`FabricModel::single`])
    /// and a calibrated iteration cost this equals the cycle-accurate core's
    /// measured [`crate::CycleBreakdown::total_cycles`] exactly.
    pub fn frame_cycles(&self, params: &CodeParams) -> usize {
        self.io_cycles(params) + self.decode_cycles(params) + 2 * self.link_latency
    }

    /// Amortized steady-state cycles per frame of the extended Eq. 8.
    pub fn steady_cycles_per_frame(&self, params: &CodeParams) -> f64 {
        let decode = (self.decode_cycles(params) + 2 * self.link_latency) as f64;
        self.io_cycles(params) as f64 + decode / self.cores as f64 + self.arbitration_overhead
    }

    /// Aggregate information throughput of the fabric in Mbit/s.
    pub fn aggregate_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.steady_cycles_per_frame(params) * self.core.clock_mhz
    }

    /// The front-end I/O ceiling in Mbit/s: no core count can push the
    /// fabric past `k · f_clk / (C/P_IO)`.
    pub fn io_ceiling_mbps(&self, params: &CodeParams) -> f64 {
        params.k as f64 / self.io_cycles(params) as f64 * self.core.clock_mhz
    }

    /// Whether the shared bus, not the cores, bounds throughput (decode
    /// fully hidden behind frame I/O).
    pub fn io_bound(&self, params: &CodeParams) -> bool {
        let decode = (self.decode_cycles(params) + 2 * self.link_latency) as f64;
        decode / (self.cores as f64) < self.io_cycles(params) as f64
    }

    /// Predicted makespan of a batch: waves of `min(P, F)` synchronized
    /// loads followed by parallel decodes, bounded below by the bus
    /// serializing every frame's I/O.
    pub fn makespan_cycles(&self, params: &CodeParams, frames: usize) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        let io = self.io_cycles(params) as f64;
        let decode = (self.decode_cycles(params) + 2 * self.link_latency) as f64;
        let waves = frames.div_ceil(self.cores) as f64;
        let wave_len = self.cores.min(frames) as f64 * io + decode + self.arbitration_overhead;
        (waves * wave_len).max(frames as f64 * io + decode)
    }

    /// Inverts the extended Eq. 8: the smallest core count whose aggregate
    /// throughput reaches `target_mbps`, or `None` when the target sits
    /// above the I/O ceiling (no P suffices — the front end must widen).
    pub fn cores_for_throughput(&self, params: &CodeParams, target_mbps: f64) -> Option<usize> {
        if target_mbps <= 0.0 {
            return Some(1);
        }
        let target_cycles = params.k as f64 / target_mbps * self.core.clock_mhz;
        let slack = target_cycles - self.io_cycles(params) as f64 - self.arbitration_overhead;
        if slack <= 0.0 {
            return None;
        }
        let decode = (self.decode_cycles(params) + 2 * self.link_latency) as f64;
        Some(((decode / slack).ceil() as usize).max(1))
    }

    /// The smallest front-end width `P_IO` whose I/O ceiling reaches
    /// `target_mbps`, or `None` for a non-positive target. At exactly this
    /// width the required core count diverges, so callers size the front end
    /// for `target / headroom` with `headroom < 1`.
    pub fn p_io_for_throughput(&self, params: &CodeParams, target_mbps: f64) -> Option<usize> {
        if target_mbps <= 0.0 {
            return None;
        }
        let budget = (params.k as f64 * self.core.clock_mhz / target_mbps).floor();
        if budget < 1.0 {
            return None;
        }
        Some(params.n.div_ceil(budget as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::ST_0_13_UM;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    fn model() -> ThroughputModel {
        ThroughputModel::paper(&ST_0_13_UM)
    }

    fn params(rate: CodeRate) -> CodeParams {
        CodeParams::new(rate, FrameSize::Normal).unwrap()
    }

    #[test]
    fn r12_reaches_the_paper_requirement() {
        // The 255 Mbit/s base-station requirement at R = 1/2, 30 iterations.
        let t = model().throughput_mbps(&params(CodeRate::R1_2));
        assert!((253.0..262.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn high_rates_exceed_low_rates() {
        let lo = model().throughput_mbps(&params(CodeRate::R1_4));
        let hi = model().throughput_mbps(&params(CodeRate::R9_10));
        assert!(hi > lo);
        assert!(hi > 400.0, "R 9/10 should exceed 400 Mbit/s: {hi}");
    }

    #[test]
    fn cycles_are_dominated_by_iterations() {
        let p = params(CodeRate::R1_2);
        let m = model();
        let io = p.n.div_ceil(m.p_io);
        assert!(m.cycles(&p) > 4 * io);
    }

    #[test]
    fn fewer_iterations_mean_proportionally_more_throughput() {
        let p = params(CodeRate::R1_2);
        let base = model();
        let fast = ThroughputModel { iterations: 15, ..base };
        // Sub-linear: the I/O cycles do not shrink with iterations.
        let ratio = fast.throughput_mbps(&p) / base.throughput_mbps(&p);
        assert!(ratio > 1.6 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn overlapped_io_raises_throughput() {
        let p = params(CodeRate::R1_2);
        let m = model();
        assert!(m.cycles_overlapped(&p) < m.cycles(&p));
        assert!(m.throughput_overlapped_mbps(&p) > m.throughput_mbps(&p));
        // Decode dominates at 30 iterations, so the gain is the I/O term.
        assert_eq!(m.cycles_overlapped(&p), m.cycles(&p) - p.n.div_ceil(m.p_io));
    }

    #[test]
    fn early_termination_scales_cycles() {
        let p = params(CodeRate::R1_2);
        let m = model();
        let full = m.cycles_at_iterations(&p, 30.0);
        let half = m.cycles_at_iterations(&p, 15.0);
        assert!((full - m.cycles(&p) as f64).abs() < 1e-9);
        assert!(half < full);
    }

    #[test]
    fn iteration_budget_inverts_the_throughput_curve() {
        let p = params(CodeRate::R1_2);
        let m = model();
        // At the paper's own operating point the full 30 iterations fit.
        let t30 = m.throughput_mbps(&p);
        assert_eq!(m.iterations_for_throughput(&p, t30), Some(30));
        // Demanding more forces a lower cap, and the returned cap is the
        // *largest* one that meets the target.
        let cap = m.iterations_for_throughput(&p, 1.5 * t30).expect("reachable");
        assert!(cap < 30, "cap {cap}");
        assert!(ThroughputModel { iterations: cap, ..m }.throughput_mbps(&p) >= 1.5 * t30);
        assert!(ThroughputModel { iterations: cap + 1, ..m }.throughput_mbps(&p) < 1.5 * t30);
        // An impossible demand is reported, not silently clamped.
        let ceiling = ThroughputModel { iterations: 1, ..m }.throughput_mbps(&p);
        assert_eq!(m.iterations_for_throughput(&p, ceiling * 1.01), None);
        // A trivial demand keeps the full budget.
        assert_eq!(m.iterations_for_throughput(&p, 1.0), Some(30));
    }

    #[test]
    fn frame_time_is_microseconds_scale() {
        // ~34000 cycles at 270 MHz is ~126 us.
        let t = model().frame_time_us(&params(CodeRate::R1_2));
        assert!((100.0..200.0).contains(&t), "{t}");
    }

    #[test]
    fn single_core_fabric_model_reproduces_eq8() {
        let p = params(CodeRate::R1_2);
        let fabric = FabricModel::single(&ST_0_13_UM);
        assert_eq!(fabric.frame_cycles(&p), model().cycles(&p));
        let agg = fabric.aggregate_mbps(&p);
        let single = model().throughput_mbps(&p);
        assert!((agg - single).abs() / single < 1e-9, "{agg} vs {single}");
    }

    #[test]
    fn fabric_throughput_is_monotone_in_cores_and_capped_by_io() {
        let p = params(CodeRate::R1_2);
        let mut last = 0.0;
        for cores in [1, 2, 4, 8, 16, 64, 1024] {
            let m = FabricModel::paper(&ST_0_13_UM, cores);
            let t = m.aggregate_mbps(&p);
            assert!(t > last, "throughput must grow with cores: {t} after {last}");
            assert!(t < m.io_ceiling_mbps(&p), "ceiling violated at P={cores}");
            last = t;
        }
        // The ceiling itself: R 1/2 Normal at P_IO = 10 is ~1.35 Gbit/s.
        let ceiling = FabricModel::paper(&ST_0_13_UM, 1).io_ceiling_mbps(&p);
        assert!((1300.0..1400.0).contains(&ceiling), "{ceiling}");
    }

    #[test]
    fn ten_gbps_needs_a_wider_front_end() {
        // The ROADMAP question: no core count reaches 10 Gbit/s at the
        // paper's P_IO = 10 — the model must say so rather than extrapolate.
        let p = params(CodeRate::R1_2);
        let m = FabricModel::paper(&ST_0_13_UM, 16);
        assert_eq!(m.cores_for_throughput(&p, 10_000.0), None);
        // Widening the front end makes it reachable, and the returned core
        // count is minimal.
        let p_io = m.p_io_for_throughput(&p, 10_000.0 / 0.8).expect("positive target");
        let wide = m.with_p_io(p_io);
        assert!(wide.io_ceiling_mbps(&p) >= 10_000.0);
        let cores = wide.cores_for_throughput(&p, 10_000.0).expect("above the ceiling now");
        assert!(wide.with_cores(cores).aggregate_mbps(&p) >= 10_000.0);
        assert!(
            cores == 1 || wide.with_cores(cores - 1).aggregate_mbps(&p) < 10_000.0,
            "core count {cores} is not minimal"
        );
    }

    #[test]
    fn calibrated_model_matches_the_measured_core_exactly() {
        use crate::core::{CoreConfig, HardwareDecoder};
        use dvbs2_decoder::test_support::noisy_llrs;
        let code = dvbs2_ldpc::DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let config = CoreConfig { max_iterations: 5, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::with_natural_schedule(&code, config);
        let (_, llrs) = noisy_llrs(&code, 2.2, 404);
        let out = hw.decode(&llrs);
        let m = FabricModel::single(&ST_0_13_UM)
            .with_iterations(config.max_iterations)
            .calibrated(&out.cycles);
        // Zero-error round trip: the calibrated extended Eq. 8 reproduces
        // the cycle-accurate total, not merely approximates it.
        assert_eq!(m.frame_cycles(code.params()), out.cycles.total_cycles);
        // The flat-latency Eq. 8 does not (that gap is the documented
        // T_latency approximation, quantified by `throughput_eq8`).
        let flat =
            ThroughputModel { iterations: config.max_iterations, ..model() }.cycles(code.params());
        assert_ne!(flat, out.cycles.total_cycles);
    }
}
