//! Activity-based energy estimation (extension — the paper reports area
//! and throughput but no power numbers; the companion work "Energy
//! Consumption of Channel Decoders for OFDM-based UWB Systems" from the
//! same group does, which motivates having the model here).
//!
//! Energy per decoded frame is accumulated from the architectural activity
//! the cycle-accurate model already determines: wide RAM reads/writes per
//! half-iteration, functional-unit message operations, and shuffle-network
//! traversals, priced with representative 0.13 µm per-event energies.

use crate::memory::MemoryConfig;
use crate::tech::Technology;
use dvbs2_ldpc::{CodeParams, PARALLELISM};
use std::fmt;

/// Per-event energies in picojoules for a 0.13 µm node (representative
/// values for small single-port SRAM macros and standard-cell datapaths of
/// that generation; clearly an *extension*, not a paper reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCosts {
    /// Energy per SRAM bit read, pJ.
    pub sram_read_pj_per_bit: f64,
    /// Energy per SRAM bit write, pJ.
    pub sram_write_pj_per_bit: f64,
    /// Energy per functional-unit message operation (one serial input or
    /// output of one unit), pJ.
    pub fu_op_pj: f64,
    /// Energy per message bit through the shuffle network, pJ.
    pub shuffle_pj_per_bit: f64,
    /// Static + clock-tree power as a fraction of dynamic energy.
    pub overhead_fraction: f64,
}

impl Default for EnergyCosts {
    fn default() -> Self {
        EnergyCosts {
            sram_read_pj_per_bit: 0.2,
            sram_write_pj_per_bit: 0.25,
            fu_op_pj: 1.0,
            shuffle_pj_per_bit: 0.08,
            overhead_fraction: 0.25,
        }
    }
}

/// Energy breakdown for one decoded frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Message-RAM access energy, nJ.
    pub message_ram_nj: f64,
    /// Channel/parity RAM access energy, nJ.
    pub side_ram_nj: f64,
    /// Functional-unit datapath energy, nJ.
    pub functional_units_nj: f64,
    /// Shuffle-network energy, nJ.
    pub shuffle_nj: f64,
    /// Static/clock overhead, nJ.
    pub overhead_nj: f64,
    /// Information bits per frame.
    pub info_bits: usize,
}

impl EnergyReport {
    /// Total energy per frame in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.message_ram_nj
            + self.side_ram_nj
            + self.functional_units_nj
            + self.shuffle_nj
            + self.overhead_nj
    }

    /// Energy per decoded information bit in nJ/bit — the figure of merit
    /// decoder papers of the era compare.
    pub fn nj_per_bit(&self) -> f64 {
        self.total_nj() / self.info_bits as f64
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<22} {:>10.1} nJ", "message RAMs", self.message_ram_nj)?;
        writeln!(f, "{:<22} {:>10.1} nJ", "channel/parity RAMs", self.side_ram_nj)?;
        writeln!(f, "{:<22} {:>10.1} nJ", "functional units", self.functional_units_nj)?;
        writeln!(f, "{:<22} {:>10.1} nJ", "shuffle network", self.shuffle_nj)?;
        writeln!(f, "{:<22} {:>10.1} nJ", "overhead", self.overhead_nj)?;
        writeln!(f, "{:<22} {:>10.1} nJ", "total / frame", self.total_nj())?;
        write!(f, "{:<22} {:>10.2} nJ/bit", "per information bit", self.nj_per_bit())
    }
}

/// Activity-based energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    costs: EnergyCosts,
    message_bits: usize,
}

impl EnergyModel {
    /// Creates the model with explicit per-event costs.
    pub fn new(costs: EnergyCosts, message_bits: usize) -> Self {
        EnergyModel { costs, message_bits }
    }

    /// Default 0.13 µm costs with the paper's 6-bit messages.
    pub fn default_0_13um() -> Self {
        EnergyModel::new(EnergyCosts::default(), 6)
    }

    /// Estimates the energy of decoding one frame with `iterations`
    /// iterations (activity counts follow from the architecture: each
    /// half-iteration reads and writes every message once).
    pub fn frame_energy(&self, params: &CodeParams, iterations: usize) -> EnergyReport {
        let c = self.costs;
        let w = self.message_bits as f64;
        let words = params.addr_entries() as f64;
        let wide_bits = w * PARALLELISM as f64;
        let iters = iterations as f64;

        // Message RAM: per iteration, each phase reads and writes every
        // wide word once.
        let message_accesses = 2.0 * iters * words;
        let message_ram_nj =
            message_accesses * wide_bits * (c.sram_read_pj_per_bit + c.sram_write_pj_per_bit) / 1e3;

        // Channel RAM: one read per message operation side; parity RAM: one
        // wide read + write per check row.
        let channel_reads = iters * (params.k as f64 + 2.0 * params.n_check as f64);
        let parity_accesses = 2.0 * iters * params.q as f64 * wide_bits;
        let side_ram_nj = (channel_reads * w * c.sram_read_pj_per_bit
            + parity_accesses * (c.sram_read_pj_per_bit + c.sram_write_pj_per_bit) / 2.0)
            / 1e3;

        // Functional units: each edge message is consumed and produced once
        // per half-iteration by some unit.
        let fu_ops = 2.0 * iters * 2.0 * (params.e_in() + params.e_pn()) as f64;
        let functional_units_nj = fu_ops * c.fu_op_pj / 1e3;

        // Shuffle network: every information-phase write and check-phase
        // read/write traverses the rotator.
        let shuffle_bits = 2.0 * iters * words * wide_bits;
        let shuffle_nj = shuffle_bits * c.shuffle_pj_per_bit / 1e3;

        let dynamic = message_ram_nj + side_ram_nj + functional_units_nj + shuffle_nj;
        EnergyReport {
            message_ram_nj,
            side_ram_nj,
            functional_units_nj,
            shuffle_nj,
            overhead_nj: dynamic * c.overhead_fraction,
            info_bits: params.k,
        }
    }

    /// Average power in milliwatts when decoding back-to-back frames at a
    /// given clock (uses the Eq. 8 cycle count).
    pub fn average_power_mw(
        &self,
        params: &CodeParams,
        iterations: usize,
        tech: &Technology,
        memory: MemoryConfig,
    ) -> f64 {
        let energy_nj = self.frame_energy(params, iterations).total_nj();
        let cycles = params.n.div_ceil(10)
            + iterations * 2 * (params.e_in() / PARALLELISM + memory.fu_latency + 5);
        let frame_time_us = cycles as f64 / tech.max_clock_mhz;
        energy_nj / frame_time_us // nJ / µs = mW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    fn params(rate: CodeRate) -> CodeParams {
        CodeParams::new(rate, FrameSize::Normal).unwrap()
    }

    #[test]
    fn energy_scales_linearly_with_iterations() {
        let model = EnergyModel::default_0_13um();
        let p = params(CodeRate::R1_2);
        let e30 = model.frame_energy(&p, 30);
        let e15 = model.frame_energy(&p, 15);
        let ratio = e30.total_nj() / e15.total_nj();
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn magnitude_is_era_plausible() {
        // LDPC decoders of the 0.13 um era: a few nJ per decoded bit.
        let model = EnergyModel::default_0_13um();
        let nj = model.frame_energy(&params(CodeRate::R1_2), 30).nj_per_bit();
        assert!((0.5..10.0).contains(&nj), "{nj} nJ/bit");
    }

    #[test]
    fn rate_3_5_burns_the_most_message_energy() {
        // Most edges -> most RAM and FU activity.
        let model = EnergyModel::default_0_13um();
        let max = CodeRate::ALL
            .iter()
            .max_by(|&&a, &&b| {
                let ea = model.frame_energy(&params(a), 30).total_nj();
                let eb = model.frame_energy(&params(b), 30).total_nj();
                ea.partial_cmp(&eb).expect("finite")
            })
            .copied()
            .unwrap();
        assert_eq!(max, CodeRate::R3_5);
    }

    #[test]
    fn power_is_sub_watt_at_paper_clock() {
        // A 22.7 mm^2 0.13 um decoder at 270 MHz should be a few hundred mW
        // (the 1024-bit decoder in [4] burned 690 mW at 1 Gbit/s).
        let model = EnergyModel::default_0_13um();
        let mw = model.average_power_mw(
            &params(CodeRate::R1_2),
            30,
            &Technology::default(),
            MemoryConfig::default(),
        );
        assert!((200.0..1200.0).contains(&mw), "{mw} mW");
    }

    #[test]
    fn report_displays_all_rows() {
        let model = EnergyModel::default_0_13um();
        let report = model.frame_energy(&params(CodeRate::R1_2), 30);
        let text = report.to_string();
        for row in ["message RAMs", "functional units", "shuffle network", "per information bit"] {
            assert!(text.contains(row), "missing {row}");
        }
    }
}
