//! The hierarchical single-port message-RAM model — Figure 5 of the paper.
//!
//! Each of the 360 lanes is one logical RAM, partitioned into `banks`
//! physical single-port SRAMs by the low address bits ("The two least
//! significant bits of the addresses determines the assignment to a
//! partition"). Because all 360 lanes operate in lockstep, the model tracks
//! *wide words* (one address across all lanes):
//!
//! * every check-phase cycle reads one wide word (reads have priority);
//! * a functional unit streams its outputs back `fu_latency` cycles after
//!   its last input, one wide word per cycle;
//! * a write may issue in a cycle only to a bank not being read, and at
//!   most `write_ports` writes to distinct banks issue per cycle
//!   ("we read data from one RAM, and write at most 2 data back to two
//!   distinct RAMs");
//! * writes that cannot issue wait in the conflict buffer whose worst-case
//!   occupancy the simulated annealer minimizes.
//!
//! # Relation to the fault model
//!
//! The [`crate::FaultScenario`] machinery corrupts wide words at their
//! *logical* write commit — the [`crate::CommitPoint`] coordinate
//! `(iteration, phase)` at which a word's value is architecturally
//! updated — never at the physical cycle the write happens to issue in
//! this model. Conflict-buffer residency shifts physical timing but not
//! logical commit order, which is exactly why an equally-faulted
//! cycle-accurate core and untimed golden model remain bit-exact: both
//! see each fault at the same commit coordinates regardless of how long
//! a write waited for a bank.

/// Memory-subsystem parameters (paper values as defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Physical banks per lane RAM (paper: 4).
    pub banks: usize,
    /// Wide writes that may issue per cycle (paper: 2).
    pub write_ports: usize,
    /// Functional-unit pipeline latency in cycles between consuming a check
    /// node's last input message and producing its first output message.
    pub fu_latency: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig { banks: 4, write_ports: 2, fu_latency: 5 }
    }
}

/// Statistics of one simulated check-phase memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Read cycles (= number of schedule entries).
    pub read_cycles: usize,
    /// Total cycles including the write drain after the last read.
    pub total_cycles: usize,
    /// Worst-case conflict-buffer occupancy (wide words).
    pub max_buffer: usize,
    /// Writes that had to wait at least one cycle in the buffer.
    pub delayed_writes: usize,
    /// Writes that issued the cycle they arrived.
    pub immediate_writes: usize,
}

/// Simulates the check-phase access pattern of a read schedule.
///
/// `reads` is the flattened word-address sequence (see
/// [`crate::CnSchedule::read_sequence`]); `row_len` is the number of reads
/// per check node. The write for the word read at cycle `r·row_len + i`
/// arrives at cycle `(r+1)·row_len + fu_latency + i`.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `reads.len()`, or if the
/// config has no banks or write ports.
pub fn simulate_cn_phase(config: MemoryConfig, reads: &[u32], row_len: usize) -> AccessStats {
    assert!(config.banks > 0 && config.write_ports > 0, "degenerate memory config");
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(reads.len() % row_len, 0, "reads must be whole rows");

    let banks = config.banks as u32;
    // Arrival cycle of each word's write-back, in arrival order.
    let mut writes: Vec<(usize, u32)> = Vec::with_capacity(reads.len());
    for (pos, &word) in reads.iter().enumerate() {
        let row = pos / row_len;
        let i = pos % row_len;
        writes.push(((row + 1) * row_len + config.fu_latency + i, word));
    }

    let mut buffer: Vec<u32> = Vec::new();
    let mut stats = AccessStats { read_cycles: reads.len(), ..AccessStats::default() };
    let mut next_write = 0usize;
    let mut cycle = 0usize;

    while next_write < writes.len() || !buffer.is_empty() || cycle < reads.len() {
        let read_bank = reads.get(cycle).map(|&w| w % banks);

        // New write-backs from the shuffling network join the queue.
        let arrivals_start = buffer.len();
        while next_write < writes.len() && writes[next_write].0 == cycle {
            buffer.push(writes[next_write].1);
            next_write += 1;
        }

        // Issue up to `write_ports` buffered writes to distinct banks that
        // are not being read this cycle (oldest first).
        let mut used_banks: Vec<u32> = Vec::with_capacity(config.write_ports);
        let mut idx = 0;
        while idx < buffer.len() && used_banks.len() < config.write_ports {
            let bank = buffer[idx] % banks;
            if Some(bank) != read_bank && !used_banks.contains(&bank) {
                used_banks.push(bank);
                let was_fresh = idx >= arrivals_start;
                if was_fresh {
                    stats.immediate_writes += 1;
                } else {
                    stats.delayed_writes += 1;
                }
                buffer.remove(idx);
            } else {
                idx += 1;
            }
        }

        stats.max_buffer = stats.max_buffer.max(buffer.len());
        cycle += 1;
    }
    stats.total_cycles = cycle;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemoryConfig {
        MemoryConfig::default()
    }

    #[test]
    fn conflict_free_trace_needs_no_buffer_persistence() {
        // Reads hit bank 0 only; writes (arriving later for the same words)
        // target bank 0 too, but after reads end everything drains freely.
        // With reads on bank 0 and writes on bank 0, every write waits while
        // reads are in flight.
        let reads = vec![0u32, 4, 8, 12, 16, 20];
        let stats = simulate_cn_phase(cfg(), &reads, 3);
        assert_eq!(stats.read_cycles, 6);
        assert!(stats.total_cycles >= 6);
        // All writes eventually issue.
        assert_eq!(stats.delayed_writes + stats.immediate_writes, 6);
    }

    #[test]
    fn alternating_banks_avoid_delays() {
        // Reads walk banks 0,1,2,3 cyclically; each write arrives when the
        // read is on a different bank, so everything issues immediately.
        let reads: Vec<u32> = (0..16u32).collect();
        let stats = simulate_cn_phase(cfg(), &reads, 4);
        assert_eq!(stats.delayed_writes, 0, "{stats:?}");
        assert_eq!(stats.immediate_writes, 16);
        assert!(stats.max_buffer <= 1);
    }

    #[test]
    fn same_bank_everything_forces_buffering() {
        // Every read and write on bank 0: nothing can issue while reading.
        let reads = vec![0u32, 4, 8, 12, 16, 20, 24, 28];
        let stats = simulate_cn_phase(cfg(), &reads, 2);
        assert!(stats.max_buffer >= 1, "{stats:?}");
        assert!(stats.total_cycles > stats.read_cycles);
    }

    #[test]
    fn write_count_is_conserved() {
        let reads: Vec<u32> = (0..64u32).map(|i| (i * 7) % 32).collect();
        let stats = simulate_cn_phase(cfg(), &reads, 8);
        assert_eq!(stats.delayed_writes + stats.immediate_writes, 64);
    }

    #[test]
    fn single_write_port_is_slower() {
        let reads: Vec<u32> = (0..64u32).map(|i| (i * 5) % 16).collect();
        let two = simulate_cn_phase(cfg(), &reads, 8);
        let one = simulate_cn_phase(MemoryConfig { write_ports: 1, ..cfg() }, &reads, 8);
        assert!(one.max_buffer >= two.max_buffer, "{one:?} vs {two:?}");
    }

    #[test]
    fn more_banks_reduce_conflicts() {
        let reads: Vec<u32> = (0..128u32).map(|i| (i * 13) % 64).collect();
        let four = simulate_cn_phase(cfg(), &reads, 8);
        let eight = simulate_cn_phase(MemoryConfig { banks: 8, ..cfg() }, &reads, 8);
        assert!(eight.delayed_writes <= four.delayed_writes, "{eight:?} vs {four:?}");
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn partial_rows_are_rejected() {
        let _ = simulate_cn_phase(cfg(), &[0, 1, 2], 2);
    }
}
