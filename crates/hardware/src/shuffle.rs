//! The cyclic shuffling network.
//!
//! The node mapping of Section 3 reduces the full permutation `Π` of the
//! Tanner graph to *cyclic shifts* of 360 lanes: entry `x = a·q + r`
//! connects lane `t` (information node `360g + t`) to the check node handled
//! by functional unit `(a + t) mod 360`. A barrel rotator therefore replaces
//! an arbitrary permutation network — the paper's key to the tiny 0.55 mm²
//! network area and congestion-free routing.

/// A cyclic-shift (barrel rotator) network over `lanes` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleNetwork {
    lanes: usize,
}

impl ShuffleNetwork {
    /// Creates a network of the given width (360 for DVB-S2).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        ShuffleNetwork { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Rotates `data` so that input lane `t` appears on output lane
    /// `(t + shift) mod lanes`, writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the lane count.
    pub fn rotate<T: Copy>(&self, data: &[T], shift: usize, out: &mut [T]) {
        assert_eq!(data.len(), self.lanes, "input width mismatch");
        assert_eq!(out.len(), self.lanes, "output width mismatch");
        let s = shift % self.lanes;
        for (t, &v) in data.iter().enumerate() {
            let dst = t + s;
            out[if dst >= self.lanes { dst - self.lanes } else { dst }] = v;
        }
    }

    /// Rotates in place (allocates a scratch copy; the cycle-accurate model
    /// uses [`Self::rotate`] with reusable buffers instead).
    pub fn rotate_in_place<T: Copy + Default>(&self, data: &mut [T], shift: usize) {
        let mut out = vec![T::default(); data.len()];
        self.rotate(data, shift, &mut out);
        data.copy_from_slice(&out);
    }

    /// The shift that undoes `shift` (used on check-phase write-back so
    /// "messages are shuffled back to their original position").
    pub fn inverse_shift(&self, shift: usize) -> usize {
        (self.lanes - shift % self.lanes) % self.lanes
    }

    /// Number of mux stages a barrel-rotator realization needs,
    /// `ceil(log2(lanes))` — 9 for 360 lanes.
    pub fn stages(&self) -> usize {
        usize::BITS as usize - (self.lanes - 1).leading_zeros() as usize
    }

    /// NAND2-equivalent gate count of the rotator for `bits`-wide messages:
    /// one 2:1 mux (≈ 2.5 gates) per lane, per bit, per stage.
    pub fn gate_count(&self, bits: usize) -> usize {
        (self.stages() * self.lanes * bits * 5).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_moves_lane_zero_to_shift() {
        let net = ShuffleNetwork::new(8);
        let data: Vec<u32> = (0..8).collect();
        let mut out = vec![0; 8];
        net.rotate(&data, 3, &mut out);
        assert_eq!(out, vec![5, 6, 7, 0, 1, 2, 3, 4]);
        assert_eq!(out[3], 0);
    }

    #[test]
    fn rotate_by_zero_is_identity() {
        let net = ShuffleNetwork::new(360);
        let data: Vec<u32> = (0..360).collect();
        let mut out = vec![0; 360];
        net.rotate(&data, 0, &mut out);
        assert_eq!(out, data);
        net.rotate(&data, 360, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn inverse_shift_round_trips() {
        let net = ShuffleNetwork::new(360);
        let data: Vec<u32> = (0..360).map(|i| i * 7).collect();
        for shift in [0usize, 1, 45, 180, 359] {
            let mut mid = vec![0; 360];
            let mut back = vec![0; 360];
            net.rotate(&data, shift, &mut mid);
            net.rotate(&mid, net.inverse_shift(shift), &mut back);
            assert_eq!(back, data, "shift {shift}");
        }
    }

    #[test]
    fn rotate_in_place_matches_rotate() {
        let net = ShuffleNetwork::new(16);
        let data: Vec<i32> = (0..16).map(|i| i - 8).collect();
        let mut a = data.clone();
        net.rotate_in_place(&mut a, 5);
        let mut b = vec![0; 16];
        net.rotate(&data, 5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn dvbs2_network_has_nine_stages() {
        let net = ShuffleNetwork::new(360);
        assert_eq!(net.stages(), 9);
        // 9 stages x 360 lanes x 6 bits x 2.5 gates = 48600 gates.
        assert_eq!(net.gate_count(6), 48_600);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rotate_rejects_wrong_width() {
        let net = ShuffleNetwork::new(8);
        let mut out = vec![0u8; 8];
        net.rotate(&[0u8; 7], 1, &mut out);
    }
}
