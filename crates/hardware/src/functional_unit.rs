//! The 360 functional units (Fig. 4).
//!
//! One functional unit serves both node types: in the information phase it
//! is a variable node (Eq. 4 with saturating arithmetic), in the check phase
//! a check node (Eq. 5 via the integer boxplus) that simultaneously runs the
//! zigzag parity update of Section 2.2 — the forward message lives in a
//! register, only backward messages are stored.
//!
//! [`FunctionalUnitArray`] models all 360 units in lockstep, operating on
//! *wide blocks* (one value per lane). Both the untimed golden model and the
//! cycle-accurate core drive this same arithmetic, so any mismatch between
//! them isolates a defect in the memory/timing machinery.

use crate::fault::FuFault;
use dvbs2_decoder::{QBoxplus, Quantizer};
use dvbs2_ldpc::{CodeParams, PARALLELISM};

/// Lockstep model of the `P = 360` functional units.
#[derive(Debug, Clone)]
pub struct FunctionalUnitArray {
    boxplus: QBoxplus,
    /// Modeled datapath defect: a stuck sign/magnitude lane in one unit's
    /// output port, applied to every extrinsic output that unit produces.
    /// Survives [`FunctionalUnitArray::reset`] — a hardware defect does not
    /// heal between frames.
    fault: Option<FuFault>,
    k: usize,
    n_check: usize,
    q_rows: usize,
    row_len: usize,
    /// Stored backward messages `b[j] = CN_{j+1} -> PN_j`.
    backward: Vec<i32>,
    /// Forward messages of the current iteration (kept for parity totals;
    /// hardware holds only the per-unit register plus chain boundaries).
    forward: Vec<i32>,
    /// Per-unit forward register.
    fwd: Vec<i32>,
    /// Chain-boundary forward values from the previous iteration.
    boundary: Vec<i32>,
    scratch_in: Vec<i32>,
    scratch_out: Vec<i32>,
}

impl FunctionalUnitArray {
    /// Creates the array for a code and message quantizer.
    pub fn new(params: &CodeParams, quantizer: Quantizer) -> Self {
        FunctionalUnitArray {
            boxplus: QBoxplus::new(quantizer),
            fault: None,
            k: params.k,
            n_check: params.n_check,
            q_rows: params.q,
            row_len: params.check_degree - 2,
            backward: vec![0; params.n_check],
            forward: vec![0; params.n_check],
            fwd: vec![0; PARALLELISM],
            boundary: vec![0; PARALLELISM],
            scratch_in: vec![0; params.check_degree],
            scratch_out: vec![0; params.check_degree],
        }
    }

    /// The message quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        self.boxplus.quantizer()
    }

    /// Injects (or clears) a modeled datapath defect. Both the golden model
    /// and the timed core share this array and drive it in the same logical
    /// order, so a corrupted output is bit-exact across the two by
    /// construction.
    pub(crate) fn set_fault(&mut self, fault: Option<FuFault>) {
        self.fault = fault;
    }

    /// Clears all stored messages (start of a new frame).
    pub fn reset(&mut self) {
        self.backward.fill(0);
        self.forward.fill(0);
        self.fwd.fill(0);
        self.boundary.fill(0);
    }

    /// Variable-node update for one 360-node information group.
    ///
    /// `block_in` holds the `d` incoming check messages per lane
    /// (`block_in[i * 360 + t]`), `channel` the group's 360 channel LLRs.
    /// Writes the `d` extrinsic outputs to `block_out` and, if given, the
    /// a-posteriori totals.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `d`.
    pub fn process_vn_group(
        &self,
        d: usize,
        channel: &[i32],
        block_in: &[i32],
        block_out: &mut [i32],
        totals: Option<&mut [i32]>,
    ) {
        let p = PARALLELISM;
        assert_eq!(channel.len(), p, "channel block must be 360 wide");
        assert_eq!(block_in.len(), d * p, "input block size mismatch");
        assert_eq!(block_out.len(), d * p, "output block size mismatch");
        let q = self.boxplus.quantizer();
        let mut totals = totals;
        for t in 0..p {
            let mut total = channel[t];
            for i in 0..d {
                total += block_in[i * p + t];
            }
            for i in 0..d {
                block_out[i * p + t] = q.saturate(total - block_in[i * p + t]);
            }
            if let Some(ts) = totals.as_deref_mut() {
                ts[t] = total;
            }
        }
        if let Some(f) = self.fault {
            let t = f.unit();
            for i in 0..d {
                block_out[i * p + t] = f.corrupt(block_out[i * p + t], q);
            }
        }
    }

    /// Loads the chain-boundary forward values into the per-unit registers
    /// (start of every check phase).
    pub fn begin_check_phase(&mut self) {
        self.fwd.copy_from_slice(&self.boundary);
    }

    /// Check-node update for residue row `r` across all 360 units.
    ///
    /// `block_in[i * 360 + u]` is the `i`-th information message (in
    /// schedule order) of unit `u`'s check `j = u·q + r`; `channel` is the
    /// full quantized channel vector (parity LLRs are fetched from it).
    /// Extrinsic information outputs land in `block_out`; parity messages
    /// update the internal forward/backward state.
    ///
    /// # Panics
    ///
    /// Panics if `r >= q` or block sizes disagree.
    pub fn process_cn_row(
        &mut self,
        r: usize,
        channel: &[i32],
        block_in: &[i32],
        block_out: &mut [i32],
    ) {
        let p = PARALLELISM;
        assert!(r < self.q_rows, "row {r} out of range");
        assert_eq!(block_in.len(), self.row_len * p, "input block size mismatch");
        assert_eq!(block_out.len(), self.row_len * p, "output block size mismatch");
        let q = *self.boxplus.quantizer();
        for u in 0..p {
            let j = u * self.q_rows + r;
            for i in 0..self.row_len {
                self.scratch_in[i] = block_in[i * p + u];
            }
            let mut d = self.row_len;
            let left_pos = if j > 0 {
                self.scratch_in[d] = q.sat_add(channel[self.k + j - 1], self.fwd[u]);
                d += 1;
                Some(d - 1)
            } else {
                None
            };
            self.scratch_in[d] = q.sat_add(
                channel[self.k + j],
                if j + 1 < self.n_check { self.backward[j] } else { 0 },
            );
            let right_pos = d;
            d += 1;

            self.boxplus.extrinsic(&self.scratch_in[..d], &mut self.scratch_out[..d]);
            if let Some(f) = self.fault {
                if f.unit() == u {
                    for v in &mut self.scratch_out[..d] {
                        *v = f.corrupt(*v, &q);
                    }
                }
            }

            for i in 0..self.row_len {
                block_out[i * p + u] = self.scratch_out[i];
            }
            if let Some(pos) = left_pos {
                self.backward[j - 1] = self.scratch_out[pos];
            }
            self.fwd[u] = self.scratch_out[right_pos];
            self.forward[j] = self.fwd[u];
        }
    }

    /// Saves the chain-boundary forwards for the next iteration (end of
    /// every check phase).
    pub fn end_check_phase(&mut self) {
        for u in (1..PARALLELISM).rev() {
            self.boundary[u] = self.fwd[u - 1];
        }
        self.boundary[0] = 0;
    }

    /// The stored parity-message state `(backward, forward, boundary)` —
    /// exposed so the traced decode entry points can fold the complete
    /// message state into a per-iteration digest.
    pub(crate) fn parity_state(&self) -> (&[i32], &[i32], &[i32]) {
        (&self.backward, &self.forward, &self.boundary)
    }

    /// Writes the parity a-posteriori totals into `totals[k..n]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than `N`.
    pub fn parity_totals(&self, channel: &[i32], totals: &mut [i32]) {
        for j in 0..self.n_check {
            totals[self.k + j] = channel[self.k + j]
                + self.forward[j]
                + if j + 1 < self.n_check { self.backward[j] } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeParams, CodeRate, FrameSize};

    fn array() -> (CodeParams, FunctionalUnitArray) {
        let p = CodeParams::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let fu = FunctionalUnitArray::new(&p, Quantizer::paper_6bit());
        (p, fu)
    }

    #[test]
    fn vn_group_computes_extrinsic_totals() {
        let (_, fu) = array();
        let p = PARALLELISM;
        let d = 3;
        let channel = vec![2i32; p];
        let mut block_in = vec![0i32; d * p];
        for i in 0..d {
            for t in 0..p {
                block_in[i * p + t] = i as i32 + 1; // messages 1, 2, 3
            }
        }
        let mut block_out = vec![0i32; d * p];
        let mut totals = vec![0i32; p];
        fu.process_vn_group(d, &channel, &block_in, &mut block_out, Some(&mut totals));
        // total = 2 + 1 + 2 + 3 = 8; extrinsic_i = 8 - msg_i.
        assert!(totals.iter().all(|&t| t == 8));
        for t in 0..p {
            assert_eq!(block_out[t], 7);
            assert_eq!(block_out[p + t], 6);
            assert_eq!(block_out[2 * p + t], 5);
        }
    }

    #[test]
    fn vn_outputs_saturate() {
        let (_, fu) = array();
        let p = PARALLELISM;
        let channel = vec![31i32; p];
        let block_in = vec![31i32; p];
        let mut block_out = vec![0i32; p];
        fu.process_vn_group(1, &channel, &block_in, &mut block_out, None);
        assert!(block_out.iter().all(|&o| o == 31)); // 62 - 31 = 31, at rail
    }

    #[test]
    fn cn_row_zero_has_no_left_input_on_unit_zero() {
        // Check 0 (unit 0, row 0) must not consult a left parity message;
        // feed strong inputs and confirm outputs are finite and sign-correct.
        let (params, mut fu) = array();
        fu.reset();
        fu.begin_check_phase();
        let p = PARALLELISM;
        let row_len = params.check_degree - 2;
        let channel = vec![4i32; params.n];
        let block_in = vec![10i32; row_len * p];
        let mut block_out = vec![0i32; row_len * p];
        fu.process_cn_row(0, &channel, &block_in, &mut block_out);
        // All inputs positive: no extrinsic may vote for bit 1 (zero is
        // allowed — small magnitudes can quantize away), and the strong
        // input consensus must keep most outputs strictly positive.
        assert!(block_out.iter().all(|&o| o >= 0));
        assert!(block_out.iter().filter(|&&o| o > 0).count() > block_out.len() / 2);
    }

    #[test]
    fn boundary_propagates_between_iterations() {
        let (params, mut fu) = array();
        fu.reset();
        let p = PARALLELISM;
        let row_len = params.check_degree - 2;
        let channel = vec![4i32; params.n];
        let block_in = vec![10i32; row_len * p];
        let mut block_out = vec![0i32; row_len * p];
        fu.begin_check_phase();
        for r in 0..params.q {
            fu.process_cn_row(r, &channel, &block_in, &mut block_out);
        }
        fu.end_check_phase();
        // After one full sweep with positive inputs, boundaries are positive
        // forward messages (except unit 0's, which has no predecessor).
        assert_eq!(fu.boundary[0], 0);
        assert!(fu.boundary[1..].iter().all(|&b| b > 0));
    }

    #[test]
    fn reset_clears_state() {
        let (params, mut fu) = array();
        let p = PARALLELISM;
        let row_len = params.check_degree - 2;
        let channel = vec![4i32; params.n];
        let block_in = vec![10i32; row_len * p];
        let mut block_out = vec![0i32; row_len * p];
        fu.begin_check_phase();
        fu.process_cn_row(0, &channel, &block_in, &mut block_out);
        fu.reset();
        assert!(fu.backward.iter().all(|&b| b == 0));
        assert!(fu.forward.iter().all(|&f| f == 0));
    }
}
