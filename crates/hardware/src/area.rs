//! The silicon-area model — Table 3 of the paper.
//!
//! Every row of the report is computed from this implementation's actual
//! bit and gate inventories (worst case across all code rates, since the IP
//! core supports every rate at run time), priced with the calibrated
//! [`Technology`] densities:
//!
//! * channel LLR RAMs: `N × w` bits;
//! * message RAMs: worst-case information-edge messages (rate 3/5) plus the
//!   *halved* parity storage of the zigzag schedule (rate 1/4);
//! * address/shuffle ROM: the largest [`crate::ConnectivityRom`];
//! * functional units: the [`FuGateModel`] gate count × 360;
//! * control logic and the barrel-rotator shuffle network.

use crate::fabric::FabricConfig;
use crate::rom::ConnectivityRom;
use crate::shuffle::ShuffleNetwork;
use crate::tech::Technology;
use dvbs2_ldpc::{CodeParams, DvbS2Code, FrameSize, PARALLELISM};
use std::fmt;

/// Gate-count model of one functional unit.
///
/// The unit serves both node types serially (Eq. 4 and Eq. 5 with the
/// integer boxplus), so it must buffer up to `max_check_degree` incoming
/// messages, hold an output staging buffer, and carry the dual-mode
/// datapath plus per-rate control — "the required flexibility of the
/// different code rates" the paper cites for the large logic share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuGateModel {
    /// Message width in bits.
    pub datapath_bits: usize,
    /// Largest information-node degree supported (13, from rate 2/3).
    pub max_var_degree: usize,
    /// Largest check-node degree supported (30, from rate 9/10).
    pub max_check_degree: usize,
}

impl FuGateModel {
    /// Worst-case model over all rates of a frame size.
    pub fn for_frame(frame: FrameSize, datapath_bits: usize) -> Self {
        let all = CodeParams::all(frame);
        FuGateModel {
            datapath_bits,
            max_var_degree: all.iter().map(|p| p.hi.degree).max().unwrap_or(0),
            max_check_degree: all.iter().map(|p| p.check_degree).max().unwrap_or(0),
        }
    }

    /// NAND2-equivalent gates per functional unit, by component.
    pub fn breakdown(&self) -> Vec<(&'static str, usize)> {
        let w = self.datapath_bits;
        let flop_gates = 7; // scan flop NAND2-equivalent
        let input_buffer = self.max_check_degree * w * flop_gates;
        let output_staging = self.max_check_degree * w * flop_gates;
        let working_regs = 6 * (w + 4) * flop_gates;
        let adders = 4 * (w + 4) * 5;
        let comparators = 2 * w * 3;
        let boxplus_luts = 2 * 200;
        let saturation_mux = 300;
        let mode_routing = 600;
        let control = 1000;
        let rate_flexibility = 500;
        vec![
            ("input message buffer", input_buffer),
            ("output staging buffer", output_staging),
            ("working registers", working_regs),
            ("adders", adders),
            ("comparators", comparators),
            ("boxplus correction LUTs", boxplus_luts),
            ("saturation and muxing", saturation_mux),
            ("VN/CN mode routing", mode_routing),
            ("control FSM", control),
            ("multi-rate flexibility", rate_flexibility),
        ]
    }

    /// Total gates per functional unit.
    pub fn gates(&self) -> usize {
        self.breakdown().iter().map(|&(_, g)| g).sum()
    }
}

/// One row of the area report.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaItem {
    /// Component name (matches the paper's Table 3 rows).
    pub name: &'static str,
    /// Area in mm².
    pub mm2: f64,
    /// How the number was derived (bits or gates).
    pub detail: String,
}

/// The full Table 3 style report.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Component rows.
    pub items: Vec<AreaItem>,
}

impl AreaReport {
    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.items.iter().map(|i| i.mm2).sum()
    }

    /// Area of a named component, if present.
    pub fn component_mm2(&self, name: &str) -> Option<f64> {
        self.items.iter().find(|i| i.name == name).map(|i| i.mm2)
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<28} {:>10}  derivation", "component", "area [mm2]")?;
        for item in &self.items {
            writeln!(f, "{:<28} {:>10.3}  {}", item.name, item.mm2, item.detail)?;
        }
        writeln!(f, "{:<28} {:>10.2}", "Total", self.total_mm2())
    }
}

/// The area model: technology node plus message width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    tech: Technology,
    message_bits: usize,
}

impl AreaModel {
    /// Creates a model for a technology and message width.
    pub fn new(tech: Technology, message_bits: usize) -> Self {
        AreaModel { tech, message_bits }
    }

    /// The paper's configuration: 0.13 µm, 6-bit messages.
    pub fn paper() -> Self {
        AreaModel::new(Technology::default(), 6)
    }

    /// The technology node.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Computes the Table 3 report for a frame size (worst case over all of
    /// its code rates, which is how a multi-rate IP core must be sized).
    pub fn report(&self, frame: FrameSize) -> AreaReport {
        let all = CodeParams::all(frame);
        let w = self.message_bits;
        let n = frame.codeword_len();

        let max_e_in = all.iter().map(CodeParams::e_in).max().unwrap_or(0);
        // Zigzag schedule: only backward parity messages are stored
        // (Section 2.2 halves this memory: E_PN/2 ≈ N-K messages).
        let max_pn = all.iter().map(|p| p.n_check).max().unwrap_or(0);
        let rom_bits = all
            .iter()
            .map(|p| {
                let code = DvbS2Code::new(p.rate, frame).expect("params exist");
                ConnectivityRom::build(p, code.table()).storage_bits()
            })
            .max()
            .unwrap_or(0);

        let channel_bits = n * w;
        let message_bits = (max_e_in + max_pn) * w;
        let fu = FuGateModel::for_frame(frame, w);
        let fu_gates_total = fu.gates() * PARALLELISM;
        let control_gates = 40_000;
        let shuffle = ShuffleNetwork::new(PARALLELISM);
        let shuffle_mm2 =
            self.tech.logic_mm2(shuffle.gate_count(w)) * self.tech.shuffle_wiring_factor;

        let items = vec![
            AreaItem {
                name: "Channel LLR RAMs",
                mm2: self.tech.sram_mm2(channel_bits),
                detail: format!("{channel_bits} bits ({n} x {w}b)"),
            },
            AreaItem {
                name: "Message RAMs",
                mm2: self.tech.sram_mm2(message_bits),
                detail: format!(
                    "{message_bits} bits (IN {max_e_in} + PN {max_pn} messages x {w}b)"
                ),
            },
            AreaItem {
                name: "Address/Shuffling ROM",
                mm2: self.tech.sram_mm2(rom_bits),
                detail: format!("{rom_bits} bits (worst-rate connectivity)"),
            },
            AreaItem {
                name: "Functional units (logic)",
                mm2: self.tech.logic_mm2(fu_gates_total),
                detail: format!("{} gates x {} units", fu.gates(), PARALLELISM),
            },
            AreaItem {
                name: "Control logic",
                mm2: self.tech.logic_mm2(control_gates),
                detail: format!("{control_gates} gates"),
            },
            AreaItem {
                name: "Shuffling network",
                mm2: shuffle_mm2,
                detail: format!(
                    "{} gates x {:.2} wiring factor",
                    shuffle.gate_count(w),
                    self.tech.shuffle_wiring_factor
                ),
            },
        ];
        AreaReport { items }
    }

    /// Extends the Table 3 report to a P-core [`crate::DecoderFabric`]
    /// (DESIGN.md §12): every per-core row replicates P times, and the
    /// shared front end adds a double-buffered frame staging RAM, per-port
    /// link FIFOs with the bus mux tree (priced with the same wiring factor
    /// as the shuffle network — both are long-haul datapaths), and the
    /// round-robin arbiter.
    pub fn fabric_report(&self, frame: FrameSize, fabric: &FabricConfig) -> AreaReport {
        let p = fabric.cores;
        let w = self.message_bits;
        let n = frame.codeword_len();
        let base = self.report(frame);
        let mut items: Vec<AreaItem> = base
            .items
            .iter()
            .map(|i| AreaItem {
                name: i.name,
                mm2: i.mm2 * p as f64,
                detail: format!("{p} cores x {}", i.detail),
            })
            .collect();
        let staging_bits = 2 * n * w;
        let flop_gates = 7;
        let beat_bits = fabric.core.p_io * w;
        let fifo_depth = fabric.link_latency.max(2);
        let fifo_gates = p * fifo_depth * beat_bits * flop_gates;
        let mux_gates = p * beat_bits * 3;
        let arb_gates = 2_000 + 150 * p;
        items.push(AreaItem {
            name: "Shared frame buffer",
            mm2: self.tech.sram_mm2(staging_bits),
            detail: format!("{staging_bits} bits (2 x {n} x {w}b staging)"),
        });
        items.push(AreaItem {
            name: "Interconnect FIFOs & links",
            mm2: self.tech.logic_mm2(fifo_gates + mux_gates) * self.tech.shuffle_wiring_factor,
            detail: format!("{p} ports x {fifo_depth} beats x {beat_bits}b + bus muxing"),
        });
        items.push(AreaItem {
            name: "Bus arbitration & control",
            mm2: self.tech.logic_mm2(arb_gates),
            detail: format!("{arb_gates} gates ({p}-way round-robin)"),
        });
        AreaReport { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_frame_total_matches_paper_within_ten_percent() {
        let report = AreaModel::paper().report(FrameSize::Normal);
        let total = report.total_mm2();
        assert!((total - 22.74).abs() / 22.74 < 0.10, "total {total} vs paper 22.74");
    }

    #[test]
    fn breakdown_shape_matches_table3() {
        let report = AreaModel::paper().report(FrameSize::Normal);
        let msg = report.component_mm2("Message RAMs").unwrap();
        let fu = report.component_mm2("Functional units (logic)").unwrap();
        let rom = report.component_mm2("Address/Shuffling ROM").unwrap();
        let shuffle = report.component_mm2("Shuffling network").unwrap();
        // Messages and FU logic dominate; connectivity storage is tiny.
        assert!((msg - 9.12).abs() < 0.5, "message RAM {msg}");
        assert!((fu - 10.8).abs() < 1.0, "FU logic {fu}");
        assert!(rom < 0.1, "ROM {rom}");
        assert!((shuffle - 0.55).abs() < 0.1, "shuffle {shuffle}");
    }

    #[test]
    fn fu_model_uses_worst_case_degrees() {
        let fu = FuGateModel::for_frame(FrameSize::Normal, 6);
        assert_eq!(fu.max_var_degree, 13);
        assert_eq!(fu.max_check_degree, 30);
        let gates = fu.gates();
        assert!((5_000..7_500).contains(&gates), "gates {gates}");
    }

    #[test]
    fn five_bit_messages_shrink_the_memories() {
        let six = AreaModel::new(Technology::default(), 6).report(FrameSize::Normal);
        let five = AreaModel::new(Technology::default(), 5).report(FrameSize::Normal);
        assert!(five.total_mm2() < six.total_mm2());
        let ratio = five.component_mm2("Message RAMs").unwrap()
            / six.component_mm2("Message RAMs").unwrap();
        assert!((ratio - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn short_frames_are_much_smaller() {
        let normal = AreaModel::paper().report(FrameSize::Normal);
        let short = AreaModel::paper().report(FrameSize::Short);
        assert!(short.total_mm2() < normal.total_mm2());
    }

    #[test]
    fn fabric_report_scales_cores_and_prices_the_interconnect() {
        let model = AreaModel::paper();
        let base = model.report(FrameSize::Normal).total_mm2();
        let single = model
            .fabric_report(FrameSize::Normal, &FabricConfig::single(Default::default()))
            .total_mm2();
        // One core plus front end: a small constant over the bare core
        // (dominated by the double-buffered frame staging RAM, ~2x the
        // channel LLR RAM).
        assert!(single > base && single < base + 5.0, "single-core fabric {single} vs {base}");
        let mut last = 0.0;
        for cores in [1, 2, 4, 8, 16] {
            let cfg = FabricConfig { cores, ..FabricConfig::default() };
            let report = model.fabric_report(FrameSize::Normal, &cfg);
            let total = report.total_mm2();
            assert!(total > last, "area must grow with cores");
            // Core area dominates: the interconnect is an overhead, not the
            // point of the design.
            let interconnect = report.component_mm2("Interconnect FIFOs & links").unwrap()
                + report.component_mm2("Bus arbitration & control").unwrap()
                + report.component_mm2("Shared frame buffer").unwrap();
            assert!(
                interconnect < 0.20 * total,
                "interconnect {interconnect} out of {total} at P={cores}"
            );
            assert!(total >= cores as f64 * base, "P cores cannot shrink below P cores");
            last = total;
        }
    }

    #[test]
    fn report_displays_all_rows() {
        let report = AreaModel::paper().report(FrameSize::Normal);
        let text = report.to_string();
        for name in [
            "Channel LLR RAMs",
            "Message RAMs",
            "Address/Shuffling ROM",
            "Functional units (logic)",
            "Control logic",
            "Shuffling network",
            "Total",
        ] {
            assert!(text.contains(name), "missing row {name}:\n{text}");
        }
    }
}
