//! A cycle-accurate multi-core decoder fabric — P copies of the paper's
//! 360-FU core behind a shared frame-memory front end.
//!
//! The paper's IP core is a single decoder; ROADMAP item 4 asks how it
//! scales to 10 Gbit/s. [`DecoderFabric`] answers with a modeled
//! interconnect in the style of a cycle-driven cache simulator: independent
//! frames are dealt round-robin to P [`HardwareDecoder`] cores, channel
//! values stream from the shared front end over a single arbitrated bus
//! (`P_IO` values per granted cycle, one grant per cycle), each grant
//! traverses a fixed-latency link into the winning core's input FIFO, and
//! decoded results travel back over the same-latency return link. The model
//! counts contention explicitly — per-frame bus-stall cycles, arbitration
//! losses, input-queue waits, and per-port queue high-water marks — so the
//! measured makespan can validate (or correct) the extended Eq. 8 model in
//! [`crate::FabricModel`].
//!
//! Two invariants anchor the model to the single-core truth:
//!
//! * **P = 1 identity** ([`FabricConfig::single`]): with one core and a
//!   zero-latency link, every frame's fabric span equals the core's
//!   [`CycleBreakdown::total_cycles`] exactly, and the batch makespan is
//!   their sum. The fabric never invents or loses a cycle.
//! * **Bit-exactness**: frames are decoded by real per-core
//!   [`HardwareDecoder`] instances, so the decoded bits are independent of
//!   P, of the arbitration policy, and of any modeled contention — timing
//!   and data are separated by construction, and the differential oracle's
//!   `fabric=` dimension pins that separation against regressions.

use crate::core::{CoreConfig, CycleBreakdown, HardwareDecoder, HwDecodeOutput};
use crate::fault::FaultScenario;
use crate::schedule::CnSchedule;
use dvbs2_ldpc::DvbS2Code;
use std::collections::VecDeque;

/// Bus arbitration policy of the shared front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arbitration {
    /// Fair rotating-priority grant: after a grant the pointer advances past
    /// the winner (the default, and what a real bus would ship).
    RoundRobin {
        /// Initial position of the grant pointer (modulo the core count).
        start: usize,
    },
    /// Static priority: the lowest-indexed requester always wins. Unfair by
    /// design — it exposes the worst-case starvation the round-robin policy
    /// avoids, and decoded bits must not depend on the difference.
    Fixed,
}

impl Default for Arbitration {
    fn default() -> Self {
        Arbitration::RoundRobin { start: 0 }
    }
}

/// Configuration of the multi-core fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Number of decoder cores (P ≥ 1).
    pub cores: usize,
    /// Configuration shared by every core.
    pub core: CoreConfig,
    /// Fixed one-way link latency in cycles between the front end and a
    /// core: every granted bus beat arrives `link_latency` cycles later, and
    /// the decoded result takes the same time to travel back.
    pub link_latency: usize,
    /// Bus arbitration policy.
    pub arbitration: Arbitration,
    /// When set, a core may stream its next frame in while the current one
    /// decodes (one extra input buffer). Off by default — the paper's core
    /// serializes I/O and decode, which is what Eq. 8 assumes.
    pub double_buffer: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            cores: 4,
            core: CoreConfig::default(),
            link_latency: 2,
            arbitration: Arbitration::default(),
            double_buffer: false,
        }
    }
}

impl FabricConfig {
    /// The degenerate fabric that must be cycle- and bit-identical to a bare
    /// [`HardwareDecoder`]: one core, zero link latency, no double buffering.
    pub fn single(core: CoreConfig) -> Self {
        FabricConfig {
            cores: 1,
            core,
            link_latency: 0,
            arbitration: Arbitration::default(),
            double_buffer: false,
        }
    }
}

/// Cycle-level life of one frame inside the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTiming {
    /// Index of the frame in the submitted batch.
    pub frame: usize,
    /// Core the frame was dealt to (`frame % cores`).
    pub core: usize,
    /// Cycle the core first requested the input bus for this frame.
    pub first_request: u64,
    /// Cycle of the first granted bus beat.
    pub first_grant: u64,
    /// Bus beats needed to load the frame, `ceil(N / P_IO)`.
    pub io_beats: usize,
    /// Cycles spent requesting the bus without a grant (arbitration stalls).
    pub load_stall_cycles: u64,
    /// Cycles the fully-loaded frame waited in the core's input FIFO for the
    /// decode engine (only non-zero with double buffering).
    pub input_wait_cycles: u64,
    /// Cycle decoding started.
    pub decode_start: u64,
    /// Decode cycles (the core's info + check phases; I/O is modeled by the
    /// fabric, not the core).
    pub decode_cycles: usize,
    /// Cycle the decoded result is back at the shared front end.
    pub done_cycle: u64,
}

impl FrameTiming {
    /// Total fabric cycles from first bus request to the returned result.
    ///
    /// Decomposes exactly as
    /// `io_beats + load_stall_cycles + input_wait_cycles + decode_cycles +
    /// 2 * link_latency` — the simulator asserts this identity for every
    /// frame, so contention is fully accounted, never smeared.
    pub fn span_cycles(&self) -> u64 {
        self.done_cycle - self.first_request
    }
}

/// Aggregate contention counters of one batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Cores in the fabric.
    pub cores: usize,
    /// Frames decoded.
    pub frames: usize,
    /// Cycle the last result reached the front end (0 for an empty batch).
    pub makespan_cycles: u64,
    /// Cycles the input bus spent granted (= total beats transferred).
    pub bus_busy_cycles: u64,
    /// Total core-cycles spent requesting the bus without a grant.
    pub stall_cycles: u64,
    /// Grant decisions lost: for every contended cycle, each requester that
    /// was not granted counts once.
    pub arbitration_losses: u64,
    /// Worst per-port backlog of frames waiting to start loading.
    pub queue_high_water: usize,
    /// Decode-busy cycles per core.
    pub per_core_busy_cycles: Vec<u64>,
    /// Frames dealt to each core.
    pub per_core_frames: Vec<usize>,
}

impl FabricStats {
    /// Fraction of the makespan the input bus was busy.
    pub fn bus_utilization(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// Aggregate information throughput of the batch in Mbit/s.
    pub fn aggregate_throughput_mbps(&self, clock_mhz: f64, info_bits_per_frame: usize) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            (self.frames * info_bits_per_frame) as f64 / self.makespan_cycles as f64 * clock_mhz
        }
    }
}

/// Everything a batch decode produces: per-frame results, per-frame timing,
/// and fabric-level contention counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricOutput {
    /// Per-frame decode outputs, in submission order. Bit-identical to what
    /// a bare [`HardwareDecoder`] produces for each frame.
    pub outputs: Vec<HwDecodeOutput>,
    /// Per-frame fabric timing, in submission order.
    pub timings: Vec<FrameTiming>,
    /// Batch-level counters.
    pub stats: FabricStats,
}

/// What one port (core-side end of the interconnect) is doing.
#[derive(Debug)]
struct Port {
    /// Frames dealt to this core that have not started loading.
    queue: VecDeque<usize>,
    /// Frame currently streaming in over the bus (beats still to grant).
    loading: Option<(usize, usize)>,
    /// Fully-granted frames waiting in the input FIFO: `(frame, ready_at)`
    /// where `ready_at` is the first cycle the decode engine may start.
    ready: VecDeque<(usize, u64)>,
    /// Frame occupying the decode engine and its end cycle (exclusive).
    decoding: Option<(usize, u64)>,
    /// Without double buffering the port is busy until the previous frame's
    /// result has left over the return link.
    busy_until: u64,
}

impl Port {
    fn idle(&self) -> bool {
        self.queue.is_empty()
            && self.loading.is_none()
            && self.ready.is_empty()
            && self.decoding.is_none()
    }
}

/// The multi-core decoder fabric.
#[derive(Debug)]
pub struct DecoderFabric {
    config: FabricConfig,
    cores: Vec<HardwareDecoder>,
    n: usize,
}

impl DecoderFabric {
    /// Builds a fabric of identical cores for a code and check-phase
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores == 0` or if the schedule does not match the
    /// code's ROM.
    pub fn new(code: &DvbS2Code, schedule: CnSchedule, config: FabricConfig) -> Self {
        assert!(config.cores > 0, "a fabric needs at least one core");
        let cores = (0..config.cores)
            .map(|_| HardwareDecoder::new(code, schedule.clone(), config.core))
            .collect();
        DecoderFabric { config, cores, n: code.params().n }
    }

    /// Builds the fabric with the natural (unoptimized) schedule.
    pub fn with_natural_schedule(code: &DvbS2Code, config: FabricConfig) -> Self {
        assert!(config.cores > 0, "a fabric needs at least one core");
        let cores: Vec<HardwareDecoder> = (0..config.cores)
            .map(|_| HardwareDecoder::with_natural_schedule(code, config.core))
            .collect();
        DecoderFabric { config, n: code.params().n, cores }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Injects the same [`FaultScenario`] into every core (a uniform process
    /// defect). Per-frame results remain bit-identical to an equally-faulted
    /// single [`HardwareDecoder`], because fault commits key on logical
    /// coordinates, not fabric timing.
    ///
    /// # Panics
    ///
    /// Panics if the scenario addresses memory or units outside a core.
    pub fn set_scenario(&mut self, scenario: FaultScenario) {
        for core in &mut self.cores {
            core.set_scenario(scenario);
        }
    }

    /// Quantizes float channel LLRs with the cores' shared quantizer.
    pub fn quantize_channel(&self, llrs: &[f64]) -> Vec<i32> {
        self.cores[0].quantize_channel(llrs)
    }

    /// Decodes a batch of float-LLR frames (quantizing each first).
    pub fn decode_batch(&mut self, frames: &[Vec<f64>]) -> FabricOutput {
        let quantized: Vec<Vec<i32>> =
            frames.iter().map(|f| self.cores[0].quantize_channel(f)).collect();
        self.decode_quantized_batch(&quantized)
    }

    /// Decodes a batch of quantized frames, cycle-accurately.
    ///
    /// # Panics
    ///
    /// Panics if any frame's length differs from `N`.
    pub fn decode_quantized_batch(&mut self, frames: &[Vec<i32>]) -> FabricOutput {
        self.decode_inner(frames, None)
    }

    /// Decodes a batch and records each frame's per-iteration message digest
    /// in the [`HardwareDecoder::decode_quantized_traced`] format, for the
    /// oracle's bit-exactness contracts.
    ///
    /// # Panics
    ///
    /// Same as [`DecoderFabric::decode_quantized_batch`].
    pub fn decode_quantized_batch_traced(
        &mut self,
        frames: &[Vec<i32>],
        traces: &mut Vec<Vec<u64>>,
    ) -> FabricOutput {
        traces.clear();
        self.decode_inner(frames, Some(traces))
    }

    fn decode_inner(
        &mut self,
        frames: &[Vec<i32>],
        mut traces: Option<&mut Vec<Vec<u64>>>,
    ) -> FabricOutput {
        let p = self.config.cores;
        let mut outputs = Vec::with_capacity(frames.len());
        for (f, channel) in frames.iter().enumerate() {
            let core = &mut self.cores[f % p];
            let out = if let Some(ts) = traces.as_deref_mut() {
                let mut trace = Vec::new();
                let out = core.decode_quantized_traced(channel, &mut trace);
                ts.push(trace);
                out
            } else {
                core.decode_quantized(channel)
            };
            outputs.push(out);
        }
        let decode_cycles: Vec<usize> = outputs
            .iter()
            .map(|o| o.cycles.info_phase_cycles + o.cycles.check_phase_cycles)
            .collect();
        let (timings, stats) = self.simulate(&decode_cycles);
        FabricOutput { outputs, timings, stats }
    }

    /// The cycle loop: dealt queues, bus arbitration, delayed links, decode
    /// countdowns. Data has already been decoded — this models *when*.
    fn simulate(&self, decode_cycles: &[usize]) -> (Vec<FrameTiming>, FabricStats) {
        let p = self.config.cores;
        let link = self.config.link_latency as u64;
        let io_beats = self.n.div_ceil(self.config.core.p_io);
        let frames = decode_cycles.len();

        let mut stats = FabricStats {
            cores: p,
            frames,
            per_core_busy_cycles: vec![0; p],
            per_core_frames: vec![0; p],
            ..FabricStats::default()
        };
        let mut timings: Vec<FrameTiming> = (0..frames)
            .map(|f| FrameTiming {
                frame: f,
                core: f % p,
                first_request: 0,
                first_grant: 0,
                io_beats,
                load_stall_cycles: 0,
                input_wait_cycles: 0,
                decode_start: 0,
                decode_cycles: decode_cycles[f],
                done_cycle: 0,
            })
            .collect();
        let mut ports: Vec<Port> = (0..p)
            .map(|_| Port {
                queue: VecDeque::new(),
                loading: None,
                ready: VecDeque::new(),
                decoding: None,
                busy_until: 0,
            })
            .collect();
        for f in 0..frames {
            ports[f % p].queue.push_back(f);
            stats.per_core_frames[f % p] += 1;
        }

        let mut rr = match self.config.arbitration {
            Arbitration::RoundRobin { start } => start % p,
            Arbitration::Fixed => 0,
        };
        let mut t: u64 = 0;
        while ports.iter().any(|port| !port.idle()) {
            // 1. Decode completions: the result leaves over the return link.
            for port in ports.iter_mut() {
                if let Some((f, end)) = port.decoding {
                    if end <= t {
                        let done = end + link;
                        timings[f].done_cycle = done;
                        port.busy_until = done;
                        port.decoding = None;
                    }
                }
            }
            // 2. Decode starts (before load starts, so a double-buffered
            // port whose FIFO drains this cycle can begin its next load in
            // the same cycle — otherwise the model would invent a bubble).
            for (c, port) in ports.iter_mut().enumerate() {
                if port.decoding.is_none() {
                    if let Some(&(f, ready_at)) = port.ready.front() {
                        if ready_at <= t {
                            port.ready.pop_front();
                            timings[f].input_wait_cycles = t - ready_at;
                            timings[f].decode_start = t;
                            port.decoding = Some((f, t + decode_cycles[f] as u64));
                            stats.per_core_busy_cycles[c] += decode_cycles[f] as u64;
                        }
                    }
                }
            }
            // 3. Load starts: a port picks up its next queued frame when its
            // input buffer is free (and, without double buffering, the whole
            // port is idle through the previous frame's return).
            for port in ports.iter_mut() {
                if port.loading.is_none() && !port.queue.is_empty() {
                    let free = if self.config.double_buffer {
                        port.ready.is_empty()
                    } else {
                        port.ready.is_empty() && port.decoding.is_none() && port.busy_until <= t
                    };
                    if free {
                        let f = port.queue.pop_front().expect("checked non-empty");
                        port.loading = Some((f, io_beats));
                        timings[f].first_request = t;
                    }
                }
            }
            // 4. Bus arbitration: one grant per cycle among requesting ports.
            let requesters: Vec<usize> = (0..p).filter(|&c| ports[c].loading.is_some()).collect();
            if !requesters.is_empty() {
                let winner = match self.config.arbitration {
                    Arbitration::Fixed => requesters[0],
                    Arbitration::RoundRobin { .. } => (0..p)
                        .map(|o| (rr + o) % p)
                        .find(|c| requesters.contains(c))
                        .expect("some port requests"),
                };
                if matches!(self.config.arbitration, Arbitration::RoundRobin { .. }) {
                    rr = (winner + 1) % p;
                }
                stats.bus_busy_cycles += 1;
                stats.arbitration_losses += requesters.len() as u64 - 1;
                for &c in &requesters {
                    if c != winner {
                        let (f, _) = ports[c].loading.expect("requester is loading");
                        timings[f].load_stall_cycles += 1;
                        stats.stall_cycles += 1;
                    }
                }
                let port = &mut ports[winner];
                let (f, beats_left) = port.loading.expect("winner is loading");
                if beats_left == io_beats {
                    timings[f].first_grant = t;
                }
                if beats_left == 1 {
                    // Last beat: the frame is fully at the core once the
                    // link delivers it; decoding may start the cycle after.
                    port.ready.push_back((f, t + link + 1));
                    port.loading = None;
                } else {
                    port.loading = Some((f, beats_left - 1));
                }
            }
            stats.queue_high_water = stats
                .queue_high_water
                .max(ports.iter().map(|port| port.queue.len()).max().unwrap_or(0));
            t += 1;
        }

        for tm in &timings {
            stats.makespan_cycles = stats.makespan_cycles.max(tm.done_cycle);
            debug_assert_eq!(
                tm.span_cycles(),
                tm.io_beats as u64
                    + tm.load_stall_cycles
                    + tm.input_wait_cycles
                    + tm.decode_cycles as u64
                    + 2 * link,
                "frame {} span does not decompose",
                tm.frame
            );
        }
        (timings, stats)
    }

    /// The per-frame cycle breakdown a bare core would report, for
    /// cross-checking a fabric frame against [`CycleBreakdown`]: the fabric
    /// span of an uncontended `P = 1, link = 0` frame equals
    /// `breakdown.total_cycles`.
    pub fn io_beats(&self) -> usize {
        self.n.div_ceil(self.config.core.p_io)
    }

    /// Sum of the spans a P=1 zero-link fabric would take — the serial
    /// baseline the measured makespan is compared against.
    pub fn serial_cycles(outputs: &[HwDecodeOutput]) -> u64 {
        outputs.iter().map(|o| o.cycles.total_cycles as u64).sum()
    }

    /// Convenience view of one output's cycle breakdown.
    pub fn breakdown(output: &HwDecodeOutput) -> &CycleBreakdown {
        &output.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreConfig;
    use crate::fault::RamFault;
    use dvbs2_decoder::test_support::noisy_llrs;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    fn short_code() -> DvbS2Code {
        DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap()
    }

    fn batch(code: &DvbS2Code, count: usize, ebn0: f64, seed: u64) -> Vec<Vec<f64>> {
        (0..count).map(|i| noisy_llrs(code, ebn0, seed + i as u64).1).collect()
    }

    #[test]
    fn single_core_fabric_is_cycle_identical_to_the_bare_core() {
        let code = short_code();
        let config = CoreConfig { max_iterations: 4, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::with_natural_schedule(&code, config);
        let mut fabric = DecoderFabric::with_natural_schedule(&code, FabricConfig::single(config));
        let frames = batch(&code, 3, 2.2, 900);
        let out = fabric.decode_batch(&frames);
        let mut serial = 0u64;
        for (i, llrs) in frames.iter().enumerate() {
            let single = hw.decode(llrs);
            assert_eq!(out.outputs[i], single, "frame {i} diverged");
            assert_eq!(
                out.timings[i].span_cycles(),
                single.cycles.total_cycles as u64,
                "frame {i} span != core cycles"
            );
            assert_eq!(out.timings[i].first_request, serial, "frame {i} start");
            serial += single.cycles.total_cycles as u64;
        }
        assert_eq!(out.stats.makespan_cycles, serial);
        assert_eq!(out.stats.stall_cycles, 0);
        assert_eq!(out.stats.arbitration_losses, 0);
    }

    #[test]
    fn results_are_invariant_in_cores_and_arbitration() {
        let code = short_code();
        let core = CoreConfig { max_iterations: 3, ..CoreConfig::default() };
        let frames = batch(&code, 5, 2.0, 4100);
        let reference = DecoderFabric::with_natural_schedule(&code, FabricConfig::single(core))
            .decode_batch(&frames)
            .outputs;
        for cores in [2, 3, 4] {
            for arbitration in [
                Arbitration::RoundRobin { start: 0 },
                Arbitration::RoundRobin { start: cores - 1 },
                Arbitration::Fixed,
            ] {
                for double_buffer in [false, true] {
                    let cfg =
                        FabricConfig { cores, core, link_latency: 2, arbitration, double_buffer };
                    let out =
                        DecoderFabric::with_natural_schedule(&code, cfg).decode_batch(&frames);
                    assert_eq!(
                        out.outputs, reference,
                        "P={cores} {arbitration:?} db={double_buffer} changed decoded frames"
                    );
                }
            }
        }
    }

    #[test]
    fn contention_is_counted_and_spans_decompose() {
        let code = short_code();
        // One iteration keeps decode short relative to I/O, forcing the
        // shared bus to saturate: with P=4 ports fighting for one grant per
        // cycle, stalls are guaranteed.
        let core = CoreConfig { max_iterations: 1, ..CoreConfig::default() };
        let cfg = FabricConfig { cores: 4, core, link_latency: 3, ..FabricConfig::default() };
        let frames = batch(&code, 8, 2.0, 7700);
        let out = DecoderFabric::with_natural_schedule(&code, cfg).decode_batch(&frames);
        assert!(out.stats.stall_cycles > 0, "io-bound fabric must stall");
        assert!(out.stats.arbitration_losses > 0);
        assert_eq!(out.stats.bus_busy_cycles, (out.timings.len() * out.timings[0].io_beats) as u64);
        for tm in &out.timings {
            assert_eq!(
                tm.span_cycles(),
                tm.io_beats as u64
                    + tm.load_stall_cycles
                    + tm.input_wait_cycles
                    + tm.decode_cycles as u64
                    + 2 * cfg.link_latency as u64
            );
        }
        // More cores can only help (or tie): the serial baseline bounds the
        // makespan from above, the bus from below.
        let serial = DecoderFabric::serial_cycles(&out.outputs)
            + out.timings.len() as u64 * 2 * cfg.link_latency as u64;
        assert!(out.stats.makespan_cycles <= serial);
        assert!(out.stats.makespan_cycles >= out.stats.bus_busy_cycles);
        assert!(out.stats.bus_utilization() > 0.5, "io-bound run should keep the bus hot");
    }

    #[test]
    fn double_buffering_reaches_the_overlapped_cadence() {
        let code = short_code();
        let core = CoreConfig { max_iterations: 2, ..CoreConfig::default() };
        let cfg = FabricConfig {
            cores: 1,
            core,
            link_latency: 0,
            double_buffer: true,
            ..FabricConfig::default()
        };
        let frames = batch(&code, 4, 2.0, 1234);
        let out = DecoderFabric::with_natural_schedule(&code, cfg).decode_batch(&frames);
        let io = out.timings[0].io_beats as u64;
        for w in out.timings.windows(2) {
            let cadence = w[1].done_cycle - w[0].done_cycle;
            let expect = io.max(w[1].decode_cycles as u64);
            assert_eq!(cadence, expect, "steady-state cadence must be max(io, decode)");
        }
    }

    #[test]
    fn faulted_fabric_matches_faulted_cores() {
        let code = short_code();
        let core = CoreConfig { max_iterations: 3, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::with_natural_schedule(&code, core);
        let fault = RamFault::StuckWord { word: 3, value: 31 };
        hw.set_fault(Some(fault));
        let mut fabric = DecoderFabric::with_natural_schedule(
            &code,
            FabricConfig { cores: 2, core, ..FabricConfig::default() },
        );
        fabric.set_scenario(FaultScenario::single(fault));
        let frames = batch(&code, 4, 2.4, 31);
        let out = fabric.decode_batch(&frames);
        for (i, llrs) in frames.iter().enumerate() {
            assert_eq!(out.outputs[i], hw.decode(llrs), "faulted frame {i} diverged");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let code = short_code();
        let mut fabric = DecoderFabric::with_natural_schedule(&code, FabricConfig::default());
        let out = fabric.decode_quantized_batch(&[]);
        assert!(out.outputs.is_empty());
        assert_eq!(out.stats.makespan_cycles, 0);
        assert_eq!(out.stats.bus_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let code = short_code();
        let cfg = FabricConfig { cores: 0, ..FabricConfig::default() };
        let _ = DecoderFabric::with_natural_schedule(&code, cfg);
    }
}
