//! Simulated-annealing optimization of the check-phase read schedule.
//!
//! The paper: "we used simulated annealing to minimize memory requirements
//! and avoidance of RAM access conflicts … This optimization step ensures
//! that only one buffer is required". The annealer permutes message reads
//! within each residue row (the only legal freedom, see
//! [`crate::CnSchedule`]) to minimize worst-case conflict-buffer occupancy
//! and the write-drain tail.

use crate::memory::{simulate_cn_phase, AccessStats, MemoryConfig};
use crate::rom::ConnectivityRom;
use crate::schedule::CnSchedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Annealer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// Proposed moves to evaluate.
    pub moves: usize,
    /// Initial Metropolis temperature (in cost units).
    pub initial_temp: f64,
    /// Geometric cooling factor per move, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed; the optimization is deterministic given the seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions { moves: 4000, initial_temp: 50.0, cooling: 0.999, seed: 2005 }
    }
}

/// Result of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The optimized schedule.
    pub schedule: CnSchedule,
    /// Memory statistics of the natural (unoptimized) schedule.
    pub baseline: AccessStats,
    /// Memory statistics of the optimized schedule.
    pub optimized: AccessStats,
    /// Moves accepted during the search.
    pub accepted_moves: usize,
}

/// Cost: worst-case buffer depth dominates; drain cycles break ties.
fn cost(stats: &AccessStats) -> f64 {
    stats.max_buffer as f64 * 1000.0
        + (stats.total_cycles - stats.read_cycles) as f64
        + stats.delayed_writes as f64 * 0.01
}

/// Optimizes the read schedule of `rom` for a memory configuration.
///
/// ```
/// use dvbs2_hardware::{optimize_schedule, AnnealOptions, ConnectivityRom, MemoryConfig};
/// use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
/// # fn main() -> Result<(), dvbs2_ldpc::CodeError> {
/// let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short)?;
/// let rom = ConnectivityRom::build(code.params(), code.table());
/// let result = optimize_schedule(&rom, MemoryConfig::default(), AnnealOptions::default());
/// assert!(result.optimized.max_buffer <= result.baseline.max_buffer);
/// # Ok(())
/// # }
/// ```
pub fn optimize_schedule(
    rom: &ConnectivityRom,
    memory: MemoryConfig,
    options: AnnealOptions,
) -> AnnealResult {
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut schedule = CnSchedule::natural(rom);
    let row_len = rom.row_len();
    let baseline = simulate_cn_phase(memory, &schedule.read_sequence(), row_len);

    let mut current = baseline;
    let mut current_cost = cost(&baseline);
    let mut best_schedule = schedule.clone();
    let mut best_stats = baseline;
    let mut best_cost = current_cost;
    let mut temp = options.initial_temp;
    let mut accepted_moves = 0usize;

    if row_len >= 2 {
        for _ in 0..options.moves {
            let r = rng.random_range(0..rom.row_count());
            let i = rng.random_range(0..row_len);
            let mut j = rng.random_range(0..row_len - 1);
            if j >= i {
                j += 1;
            }
            schedule.swap_within_row(r, i, j);
            let stats = simulate_cn_phase(memory, &schedule.read_sequence(), row_len);
            let c = cost(&stats);
            let accept = c <= current_cost
                || rng.random::<f64>() < ((current_cost - c) / temp.max(1e-9)).exp();
            if accept {
                current = stats;
                current_cost = c;
                accepted_moves += 1;
                if c < best_cost {
                    best_cost = c;
                    best_stats = stats;
                    best_schedule = schedule.clone();
                }
            } else {
                schedule.swap_within_row(r, i, j); // undo
            }
            temp *= options.cooling;
        }
    }
    let _ = current;
    debug_assert!(best_schedule.validate(rom).is_ok());
    AnnealResult { schedule: best_schedule, baseline, optimized: best_stats, accepted_moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};

    fn rom(rate: CodeRate, frame: FrameSize) -> ConnectivityRom {
        let code = DvbS2Code::new(rate, frame).unwrap();
        ConnectivityRom::build(code.params(), code.table())
    }

    #[test]
    fn optimization_never_worsens_the_buffer() {
        let rom = rom(CodeRate::R1_2, FrameSize::Short);
        let result = optimize_schedule(&rom, MemoryConfig::default(), AnnealOptions::default());
        assert!(result.optimized.max_buffer <= result.baseline.max_buffer);
        result.schedule.validate(&rom).unwrap();
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let rom = rom(CodeRate::R3_4, FrameSize::Short);
        let opts = AnnealOptions { moves: 500, ..AnnealOptions::default() };
        let a = optimize_schedule(&rom, MemoryConfig::default(), opts);
        let b = optimize_schedule(&rom, MemoryConfig::default(), opts);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.optimized, b.optimized);
    }

    #[test]
    fn optimized_buffer_is_small() {
        // The reproduction target: a single small buffer suffices.
        let rom = rom(CodeRate::R1_2, FrameSize::Short);
        let result = optimize_schedule(&rom, MemoryConfig::default(), AnnealOptions::default());
        assert!(
            result.optimized.max_buffer <= 4,
            "optimized buffer too large: {:?}",
            result.optimized
        );
    }

    #[test]
    fn zero_move_budget_returns_baseline() {
        let rom = rom(CodeRate::R2_3, FrameSize::Short);
        let result = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 0, ..AnnealOptions::default() },
        );
        assert_eq!(result.baseline, result.optimized);
        assert_eq!(result.accepted_moves, 0);
    }
}
