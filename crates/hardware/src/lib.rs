//! Cycle-accurate model of the DVB-S2 LDPC decoder IP core (DATE 2005).
//!
//! This crate is the paper's primary contribution rendered as an executable
//! model:
//!
//! * [`ConnectivityRom`] — the `(shift, address)` extraction that stores the
//!   whole Tanner-graph connectivity in `E_IN/360` entries (Fig. 3);
//! * [`ShuffleNetwork`] — the cyclic barrel rotator that replaces a general
//!   permutation network;
//! * [`simulate_cn_phase`] / [`MemoryConfig`] — the hierarchical single-port
//!   4-bank message RAM with its write-conflict buffer (Fig. 5);
//! * [`optimize_schedule`] — the simulated-annealing addressing optimization;
//! * [`HardwareDecoder`] — the full cycle-accurate decoder core (Fig. 4),
//!   bit-exact against its untimed [`GoldenModel`];
//! * [`ThroughputModel`] — Eq. 8 and the 255 Mbit/s @ 270 MHz result;
//! * [`AreaModel`] — the Table 3 area breakdown on the calibrated
//!   [`Technology`] node.

#![warn(missing_docs)]

mod anneal;
mod area;
mod core;
mod fabric;
mod fault;
mod functional_unit;
mod golden;
mod memory;
mod partition;
mod power;
mod rom;
mod schedule;
mod shuffle;
mod tech;
mod testvec;
mod throughput;
mod vhdl;

pub use anneal::{optimize_schedule, AnnealOptions, AnnealResult};
pub use area::{AreaModel, AreaReport, FuGateModel};
pub use core::{CoreConfig, CycleBreakdown, HardwareDecoder, HwDecodeOutput};
pub use fabric::{
    Arbitration, DecoderFabric, FabricConfig, FabricOutput, FabricStats, FrameTiming,
};
pub use fault::{
    CommitPhase, CommitPoint, FaultActivation, FaultScenario, FuFault, RamFault, TimedRamFault,
    MAX_SCENARIO_FAULTS,
};
pub use functional_unit::FunctionalUnitArray;
pub use golden::GoldenModel;
pub use memory::{simulate_cn_phase, AccessStats, MemoryConfig};
pub use partition::hw_chain_partition;
pub use power::{EnergyCosts, EnergyModel, EnergyReport};
pub use rom::{ConnectivityRom, RomEntry};
pub use schedule::{CnSchedule, InvalidScheduleError};
pub use shuffle::ShuffleNetwork;
pub use tech::{Technology, ST_0_13_UM};
pub use testvec::{ParseVectorError, TestVectorSet, VectorFrame};
pub use throughput::{FabricModel, ThroughputModel};
pub use vhdl::VhdlGenerator;
