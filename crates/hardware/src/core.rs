//! The cycle-accurate decoder core — Figure 4 of the paper, clocked.
//!
//! [`HardwareDecoder`] moves every message through the modeled memory
//! subsystem: one wide read per cycle, functional-unit pipeline latency,
//! write-back through the shuffling network into the 4-bank single-port
//! RAMs, and the conflict buffer of Figure 5. Its decode results must be
//! **bit-identical** to the untimed [`crate::GoldenModel`] (verified in the
//! test suite and `tests/hw_equivalence.rs`), and its cycle counts are the
//! measured side of the Eq. 8 throughput comparison.

use crate::fault::{CommitPhase, CommitPoint, FaultScenario, RamFault};
use crate::functional_unit::FunctionalUnitArray;
use crate::golden::{compute_totals, syndrome_clean};
use crate::memory::MemoryConfig;
use crate::rom::ConnectivityRom;
use crate::schedule::CnSchedule;
use crate::shuffle::ShuffleNetwork;
use dvbs2_decoder::{hard_decisions_int, DecodeResult, Quantizer};
use dvbs2_ldpc::{CodeParams, DvbS2Code, PARALLELISM};
use std::collections::VecDeque;

/// Configuration of the cycle-accurate core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Message/channel quantizer (the paper: 6 bit).
    pub quantizer: Quantizer,
    /// Iterations per frame. The paper assumes a fixed 30.
    pub max_iterations: usize,
    /// Optional syndrome-based early termination (off in the paper's
    /// throughput accounting).
    pub early_stop: bool,
    /// Memory subsystem parameters (banks, write ports, FU latency).
    pub memory: MemoryConfig,
    /// Channel values accepted per I/O cycle (the paper: 10).
    pub p_io: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            quantizer: Quantizer::paper_6bit(),
            max_iterations: 30,
            early_stop: false,
            memory: MemoryConfig::default(),
            p_io: 10,
        }
    }
}

/// Measured cycle counts of one decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Frame I/O cycles, `ceil(N / P_IO)`.
    pub io_cycles: usize,
    /// Information-phase cycles summed over iterations.
    pub info_phase_cycles: usize,
    /// Check-phase cycles summed over iterations (includes write drains).
    pub check_phase_cycles: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Worst conflict-buffer occupancy observed (wide words).
    pub max_buffer: usize,
    /// `io + info + check` cycles.
    pub total_cycles: usize,
}

impl CycleBreakdown {
    /// Information throughput in Mbit/s at a given clock.
    pub fn throughput_mbps(&self, clock_mhz: f64, info_bits: usize) -> f64 {
        info_bits as f64 / self.total_cycles as f64 * clock_mhz
    }
}

/// Result of a hardware decode: decisions plus measured cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwDecodeOutput {
    /// The decoding outcome (bit-identical to the golden model's).
    pub result: DecodeResult,
    /// Measured cycle counts.
    pub cycles: CycleBreakdown,
}

/// A write-back in flight: committed to the RAM only when the memory
/// subsystem grants it a bank.
#[derive(Debug, Clone)]
struct PendingWrite {
    word: u32,
    arrival: usize,
    data: Vec<i32>,
}

/// Data-carrying model of the conflict buffer of Figure 5.
#[derive(Debug, Default)]
struct WriteQueue {
    inflight: VecDeque<PendingWrite>,
    buffer: VecDeque<PendingWrite>,
    max_buffer: usize,
}

impl WriteQueue {
    fn push(&mut self, word: u32, arrival: usize, data: Vec<i32>) {
        debug_assert!(self.inflight.back().is_none_or(|w| w.arrival <= arrival));
        self.inflight.push_back(PendingWrite { word, arrival, data });
    }

    /// One memory cycle: accept arrivals, issue up to `write_ports` writes
    /// to distinct banks not being read, commit them into `ram`.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        cycle: usize,
        read_bank: Option<u32>,
        memory: MemoryConfig,
        ram: &mut [i32],
        write_pending: &mut [bool],
        scenario: &FaultScenario,
        quantizer: &Quantizer,
        point: CommitPoint,
    ) {
        while self.inflight.front().is_some_and(|w| w.arrival <= cycle) {
            let w = self.inflight.pop_front().expect("checked non-empty");
            self.buffer.push_back(w);
        }
        let banks = memory.banks as u32;
        let mut used: Vec<u32> = Vec::with_capacity(memory.write_ports);
        let mut idx = 0;
        while idx < self.buffer.len() && used.len() < memory.write_ports {
            let bank = self.buffer[idx].word % banks;
            if Some(bank) != read_bank && !used.contains(&bank) {
                used.push(bank);
                let w = self.buffer.remove(idx).expect("index in range");
                let word = w.word as usize;
                let p = w.data.len();
                let lanes = &mut ram[word * p..(word + 1) * p];
                lanes.copy_from_slice(&w.data);
                scenario.corrupt_word(word, lanes, quantizer, point);
                write_pending[word] = false;
            } else {
                idx += 1;
            }
        }
        self.max_buffer = self.max_buffer.max(self.buffer.len());
    }

    fn is_empty(&self) -> bool {
        self.inflight.is_empty() && self.buffer.is_empty()
    }
}

/// The cycle-accurate IP core model.
#[derive(Debug)]
pub struct HardwareDecoder {
    params: CodeParams,
    rom: ConnectivityRom,
    schedule: CnSchedule,
    fu: FunctionalUnitArray,
    shuffle: ShuffleNetwork,
    config: CoreConfig,
    scenario: FaultScenario,
    ram: Vec<i32>,
    write_pending: Vec<bool>,
    totals: Vec<i32>,
    block_in: Vec<i32>,
    block_out: Vec<i32>,
    rotated: Vec<i32>,
}

impl HardwareDecoder {
    /// Builds the core for a code with an explicit check-phase schedule
    /// (see [`crate::optimize_schedule`] for an annealed one).
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not match the code's ROM.
    pub fn new(code: &DvbS2Code, schedule: CnSchedule, config: CoreConfig) -> Self {
        let params = *code.params();
        let rom = ConnectivityRom::build(&params, code.table());
        schedule.validate(&rom).expect("schedule must match the code's ROM");
        let words = rom.words();
        let max_block = params.hi.degree.max(params.check_degree);
        HardwareDecoder {
            fu: FunctionalUnitArray::new(&params, config.quantizer),
            shuffle: ShuffleNetwork::new(PARALLELISM),
            ram: vec![0; words * PARALLELISM],
            write_pending: vec![false; words],
            totals: vec![0; params.n],
            block_in: vec![0; max_block * PARALLELISM],
            block_out: vec![0; max_block * PARALLELISM],
            rotated: vec![0; PARALLELISM],
            params,
            rom,
            schedule,
            config,
            scenario: FaultScenario::none(),
        }
    }

    /// Builds the core with the natural (unoptimized) schedule.
    pub fn with_natural_schedule(code: &DvbS2Code, config: CoreConfig) -> Self {
        let rom = ConnectivityRom::build(code.params(), code.table());
        Self::new(code, CnSchedule::natural(&rom), config)
    }

    /// The code parameters.
    pub fn params(&self) -> &CodeParams {
        &self.params
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The schedule driving the check phase.
    pub fn schedule(&self) -> &CnSchedule {
        &self.schedule
    }

    /// Injects (or clears) a single permanently stuck/flipping RAM word —
    /// the pre-scenario fault API, kept as a thin wrapper over
    /// [`HardwareDecoder::set_scenario`].
    ///
    /// # Panics
    ///
    /// Panics if the fault's word address is outside the message RAM.
    pub fn set_fault(&mut self, fault: Option<RamFault>) {
        self.set_scenario(fault.map(FaultScenario::from).unwrap_or_default());
    }

    /// Injects a complete [`FaultScenario`] (multiple RAM faults, transient
    /// activations, FU datapath fault). Subsequent decodes run with the
    /// scenario active; decoding still terminates within the iteration cap
    /// and never panics — only the decoded bits degrade.
    ///
    /// # Panics
    ///
    /// Panics if any fault addresses memory or units outside the core.
    pub fn set_scenario(&mut self, scenario: FaultScenario) {
        scenario.validate(self.rom.words());
        self.fu.set_fault(scenario.fu_fault());
        self.scenario = scenario;
    }

    /// The injected RAM fault, if the active scenario is a single permanent
    /// one (the only kind the pre-scenario API could express).
    pub fn fault(&self) -> Option<RamFault> {
        self.scenario.as_single_permanent()
    }

    /// The active fault scenario (empty when fault-free).
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Quantizes float channel LLRs with the core's quantizer.
    pub fn quantize_channel(&self, llrs: &[f64]) -> Vec<i32> {
        llrs.iter().map(|&l| self.config.quantizer.quantize(l)).collect()
    }

    /// Decodes float channel LLRs (quantizing them first).
    pub fn decode(&mut self, llrs: &[f64]) -> HwDecodeOutput {
        let channel = self.quantize_channel(llrs);
        self.decode_quantized(&channel)
    }

    /// Decodes one frame of quantized channel LLRs, cycle-accurately.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != N`, or (a model invariant, not an input
    /// error) if the memory schedule would ever read a word whose write-back
    /// is still in flight.
    pub fn decode_quantized(&mut self, channel: &[i32]) -> HwDecodeOutput {
        self.decode_inner(channel, None)
    }

    /// Decodes one frame and records a per-iteration digest of the complete
    /// message state after each check phase, in the same format as
    /// [`crate::GoldenModel::decode_quantized_traced`]. The two traces must
    /// be identical — with or without an injected [`RamFault`] — which is
    /// the oracle's per-iteration-message bit-exactness contract.
    ///
    /// # Panics
    ///
    /// Same as [`HardwareDecoder::decode_quantized`].
    pub fn decode_quantized_traced(
        &mut self,
        channel: &[i32],
        trace: &mut Vec<u64>,
    ) -> HwDecodeOutput {
        trace.clear();
        self.decode_inner(channel, Some(trace))
    }

    fn decode_inner(
        &mut self,
        channel: &[i32],
        mut trace: Option<&mut Vec<u64>>,
    ) -> HwDecodeOutput {
        assert_eq!(channel.len(), self.params.n, "LLR length mismatch");
        self.ram.fill(0);
        self.scenario.corrupt_power_on(&mut self.ram, &self.config.quantizer);
        self.write_pending.fill(false);
        self.fu.reset();

        let mut cycles = CycleBreakdown {
            io_cycles: self.params.n.div_ceil(self.config.p_io),
            ..CycleBreakdown::default()
        };
        let mut converged = false;

        for iteration in 0..self.config.max_iterations {
            cycles.iterations += 1;
            let (info_cycles, info_buf) = self.information_phase_timed(channel, iteration as u32);
            let (check_cycles, check_buf) = self.check_phase_timed(channel, iteration as u32);
            cycles.info_phase_cycles += info_cycles;
            cycles.check_phase_cycles += check_cycles;
            cycles.max_buffer = cycles.max_buffer.max(info_buf).max(check_buf);
            if let Some(t) = trace.as_deref_mut() {
                t.push(crate::golden::message_digest(&self.ram, &self.fu));
            }
            // A full totals sweep (one pass over E_IN) is only observable
            // through the early-stop syndrome test; without early stopping
            // only the final totals matter, so the sweep runs once after the
            // loop (bit-identical — the totals are a pure function of the
            // RAM and functional-unit state after the last check phase).
            if self.config.early_stop {
                compute_totals(
                    &self.params,
                    &self.rom,
                    &self.ram,
                    &self.fu,
                    channel,
                    &mut self.totals,
                );
                if syndrome_clean(&self.params, &self.rom, &self.totals) {
                    converged = true;
                    break;
                }
            }
        }
        if !converged {
            if !self.config.early_stop {
                compute_totals(
                    &self.params,
                    &self.rom,
                    &self.ram,
                    &self.fu,
                    channel,
                    &mut self.totals,
                );
            }
            converged = syndrome_clean(&self.params, &self.rom, &self.totals);
        }
        cycles.total_cycles =
            cycles.io_cycles + cycles.info_phase_cycles + cycles.check_phase_cycles;
        HwDecodeOutput {
            result: DecodeResult {
                bits: hard_decisions_int(&self.totals),
                iterations: cycles.iterations,
                converged,
            },
            cycles,
        }
    }

    /// Timed information phase: sequential word reads (one per cycle), node
    /// outputs re-enter the RAM through the shuffle network and the write
    /// queue. Returns (cycles, max buffer occupancy).
    fn information_phase_timed(&mut self, channel: &[i32], iteration: u32) -> (usize, usize) {
        let p = PARALLELISM;
        let point = CommitPoint { iteration, phase: CommitPhase::Info };
        let latency = self.config.memory.fu_latency;
        let mut queue = WriteQueue::default();
        let words = self.rom.words();
        let mut cycle = 0usize;
        let mut group = 0usize;
        let mut word_in_group = 0usize;
        // The functional unit's serial output port: one wide word per cycle,
        // so a short group's outputs wait for the previous group's stream.
        let mut output_free_at = 0usize;

        while cycle < words || !queue.is_empty() {
            let read_word = if cycle < words { Some(cycle) } else { None };
            if let Some(w) = read_word {
                assert!(!self.write_pending[w], "read-after-write hazard on word {w}");
                let d = self.params.group_degree(group);
                self.block_in[word_in_group * p..(word_in_group + 1) * p]
                    .copy_from_slice(&self.ram[w * p..(w + 1) * p]);
                word_in_group += 1;
                if word_in_group == d {
                    // Node complete: the functional units produce the
                    // group's outputs, streaming out after the pipeline
                    // latency, one (shifted) wide word per cycle.
                    let base = self.rom.group_base(group);
                    // Split borrows: block_in is read, block_out written.
                    let (bi, bo) = (&self.block_in[..d * p], &mut self.block_out[..d * p]);
                    self.fu.process_vn_group(d, &channel[group * p..(group + 1) * p], bi, bo, None);
                    let first_out = (cycle + 1 + latency).max(output_free_at);
                    for i in 0..d {
                        let shift = self.rom.entry(base + i).shift as usize;
                        self.shuffle.rotate(
                            &self.block_out[i * p..(i + 1) * p],
                            shift,
                            &mut self.rotated,
                        );
                        self.write_pending[base + i] = true;
                        queue.push((base + i) as u32, first_out + i, self.rotated.clone());
                    }
                    output_free_at = first_out + d;
                    group += 1;
                    word_in_group = 0;
                }
            }
            let read_bank = read_word.map(|w| (w % self.config.memory.banks) as u32);
            queue.step(
                cycle,
                read_bank,
                self.config.memory,
                &mut self.ram,
                &mut self.write_pending,
                &self.scenario,
                &self.config.quantizer,
                point,
            );
            cycle += 1;
        }
        (cycle, queue.max_buffer)
    }

    /// Timed check phase: the annealed read sequence, FU pipeline, inverse
    /// shuffle on write-back, 4-bank conflict buffer. Returns
    /// (cycles, max buffer occupancy).
    fn check_phase_timed(&mut self, channel: &[i32], iteration: u32) -> (usize, usize) {
        let p = PARALLELISM;
        let point = CommitPoint { iteration, phase: CommitPhase::Check };
        let row_len = self.rom.row_len();
        let latency = self.config.memory.fu_latency;
        let reads: Vec<u32> = self.schedule.read_sequence();
        let mut queue = WriteQueue::default();
        self.fu.begin_check_phase();

        let mut cycle = 0usize;
        while cycle < reads.len() || !queue.is_empty() {
            let read_word = reads.get(cycle).map(|&w| w as usize);
            if let Some(w) = read_word {
                assert!(!self.write_pending[w], "read-after-write hazard on word {w}");
                let i = cycle % row_len;
                self.block_in[i * p..(i + 1) * p].copy_from_slice(&self.ram[w * p..(w + 1) * p]);
                if i == row_len - 1 {
                    let r = cycle / row_len;
                    {
                        let (bi, bo) =
                            (&self.block_in[..row_len * p], &mut self.block_out[..row_len * p]);
                        self.fu.process_cn_row(r, channel, bi, bo);
                    }
                    for (pos, &word) in self.schedule.row(r).iter().enumerate() {
                        let shift = self.rom.entry(word as usize).shift as usize;
                        let inv = self.shuffle.inverse_shift(shift);
                        self.shuffle.rotate(
                            &self.block_out[pos * p..(pos + 1) * p],
                            inv,
                            &mut self.rotated,
                        );
                        self.write_pending[word as usize] = true;
                        queue.push(word, cycle + 1 + latency + pos, self.rotated.clone());
                    }
                }
            }
            let read_bank = read_word.map(|w| (w % self.config.memory.banks) as u32);
            queue.step(
                cycle,
                read_bank,
                self.config.memory,
                &mut self.ram,
                &mut self.write_pending,
                &self.scenario,
                &self.config.quantizer,
                point,
            );
            cycle += 1;
        }
        self.fu.end_check_phase();
        (cycle, queue.max_buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{optimize_schedule, AnnealOptions};
    use crate::golden::GoldenModel;
    use dvbs2_decoder::test_support::noisy_llrs;
    use dvbs2_ldpc::{CodeRate, FrameSize};

    fn short_code() -> DvbS2Code {
        DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap()
    }

    fn core(code: &DvbS2Code, config: CoreConfig) -> HardwareDecoder {
        HardwareDecoder::with_natural_schedule(code, config)
    }

    #[test]
    fn bit_exact_against_golden_model() {
        let code = short_code();
        let config = CoreConfig { max_iterations: 10, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let rom = ConnectivityRom::build(code.params(), code.table());
        let mut golden = GoldenModel::new(
            &code,
            CnSchedule::natural(&rom),
            config.quantizer,
            config.max_iterations,
            config.early_stop,
        );
        for seed in 0..4 {
            let (_, llrs) = noisy_llrs(&code, 2.2, 7000 + seed);
            let channel = hw.quantize_channel(&llrs);
            let hw_out = hw.decode_quantized(&channel);
            let golden_out = golden.decode_quantized(&channel);
            // Bit-exact, including frames that fail to converge.
            assert_eq!(hw_out.result, golden_out, "seed {seed}");
        }
    }

    #[test]
    fn bit_exact_with_annealed_schedule_and_early_stop() {
        let code = short_code();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let schedule = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 200, ..AnnealOptions::default() },
        )
        .schedule;
        let config = CoreConfig { early_stop: true, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
        let mut golden =
            GoldenModel::new(&code, schedule, config.quantizer, config.max_iterations, true);
        let (cw, llrs) = noisy_llrs(&code, 3.2, 31);
        let channel = hw.quantize_channel(&llrs);
        let hw_out = hw.decode_quantized(&channel);
        let golden_out = golden.decode_quantized(&channel);
        assert_eq!(hw_out.result, golden_out);
        assert_eq!(hw_out.result.bits, cw);
    }

    #[test]
    fn cycle_counts_match_paper_structure() {
        let code = short_code();
        let config = CoreConfig { max_iterations: 30, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let (_, llrs) = noisy_llrs(&code, 3.2, 5);
        let out = hw.decode(&llrs);
        let p = code.params();
        assert_eq!(out.cycles.io_cycles, p.n.div_ceil(10));
        assert_eq!(out.cycles.iterations, 30);
        // Each half-iteration reads E_IN/360 words plus a small drain tail.
        let reads = p.addr_entries();
        let per_phase_min = 30 * reads;
        assert!(out.cycles.info_phase_cycles >= per_phase_min);
        assert!(out.cycles.info_phase_cycles < per_phase_min + 30 * 64);
        assert!(out.cycles.check_phase_cycles >= per_phase_min);
        assert!(out.cycles.check_phase_cycles < per_phase_min + 30 * 64);
        assert_eq!(
            out.cycles.total_cycles,
            out.cycles.io_cycles + out.cycles.info_phase_cycles + out.cycles.check_phase_cycles
        );
    }

    #[test]
    fn timed_stats_match_untimed_memory_simulation() {
        // The data-carrying write queue and the fast schedule evaluator used
        // by the annealer must agree on the cycle/buffer accounting.
        use crate::memory::simulate_cn_phase;
        let code = short_code();
        let config = CoreConfig { max_iterations: 1, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let (_, llrs) = noisy_llrs(&code, 3.2, 9);
        let out = hw.decode(&llrs);
        let rom = ConnectivityRom::build(code.params(), code.table());
        let stats = simulate_cn_phase(
            config.memory,
            &CnSchedule::natural(&rom).read_sequence(),
            rom.row_len(),
        );
        assert_eq!(out.cycles.check_phase_cycles, stats.total_cycles);
    }

    #[test]
    fn fixed_iteration_decode_matches_early_stop_on_undecodable_frames() {
        // Regression for the per-iteration totals sweep: without early stop
        // the totals are now computed once after the loop. On a frame that
        // never converges the early-stopping core also runs to the cap, so
        // the two paths must agree bit for bit (same totals state).
        let code = short_code();
        let mut fixed = core(&code, CoreConfig { max_iterations: 4, ..CoreConfig::default() });
        let mut stopping = core(
            &code,
            CoreConfig { max_iterations: 4, early_stop: true, ..CoreConfig::default() },
        );
        let (_, llrs) = noisy_llrs(&code, 0.0, 13); // far below threshold
        let channel = fixed.quantize_channel(&llrs);
        let a = fixed.decode_quantized(&channel);
        let b = stopping.decode_quantized(&channel);
        assert!(!a.result.converged && !b.result.converged, "frame must not converge");
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn ram_faults_degrade_gracefully() {
        let code = short_code();
        let config = CoreConfig { max_iterations: 6, early_stop: true, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let graph = code.tanner_graph();
        let (_, llrs) = noisy_llrs(&code, 3.2, 99);
        let channel = hw.quantize_channel(&llrs);
        let clean = hw.decode_quantized(&channel);
        for fault in [
            RamFault::StuckWord { word: 3, value: 31 },
            RamFault::StuckWord { word: 0, value: -31 },
            RamFault::FlippedBits { word: 7, mask: 0b10101 },
        ] {
            hw.set_fault(Some(fault));
            let out = hw.decode_quantized(&channel);
            // Bounded, panic-free, and internally consistent: a converged
            // flag must still mean the decisions satisfy every parity check.
            assert!(out.result.iterations <= config.max_iterations, "{fault:?}");
            if out.result.converged {
                assert!(
                    dvbs2_decoder::syndrome_ok(&graph, &out.result.bits),
                    "{fault:?}: converged without a clean syndrome"
                );
            }
        }
        // Clearing the fault restores bit-exact behavior.
        hw.set_fault(None);
        assert_eq!(hw.decode_quantized(&channel), clean);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_word_must_be_in_ram() {
        let code = short_code();
        let mut hw = core(&code, CoreConfig::default());
        hw.set_fault(Some(RamFault::StuckWord { word: usize::MAX, value: 0 }));
    }

    #[test]
    fn faulted_core_is_bit_exact_against_faulted_golden_model() {
        // The fault-differential contract: corruption at write-commit is a
        // pure function of the written data, so an equally-faulted golden
        // model must agree on every decision AND every per-iteration message
        // digest — any divergence isolates a defect in the timing machinery.
        let code = short_code();
        let config = CoreConfig { max_iterations: 6, early_stop: true, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let rom = ConnectivityRom::build(code.params(), code.table());
        let mut golden = GoldenModel::new(
            &code,
            CnSchedule::natural(&rom),
            config.quantizer,
            config.max_iterations,
            config.early_stop,
        );
        let (_, llrs) = noisy_llrs(&code, 2.8, 4242);
        let channel = hw.quantize_channel(&llrs);
        for fault in [
            None,
            Some(RamFault::StuckWord { word: 3, value: 31 }),
            Some(RamFault::StuckWord { word: 0, value: -31 }),
            Some(RamFault::FlippedBits { word: 7, mask: 0b10101 }),
            Some(RamFault::FlippedBits { word: 11, mask: 1 }),
        ] {
            hw.set_fault(fault);
            golden.set_fault(fault);
            let mut hw_trace = Vec::new();
            let mut golden_trace = Vec::new();
            let hw_out = hw.decode_quantized_traced(&channel, &mut hw_trace);
            let golden_out = golden.decode_quantized_traced(&channel, &mut golden_trace);
            assert_eq!(hw_out.result, golden_out, "{fault:?}: results diverged");
            assert_eq!(hw_trace, golden_trace, "{fault:?}: message traces diverged");
            assert_eq!(hw_trace.len(), hw_out.result.iterations, "{fault:?}: trace length");
        }
    }

    #[test]
    fn faulted_scenarios_are_bit_exact_against_faulted_golden_model() {
        // The scenario-level fault-differential contract: multi-word,
        // transient (windowed and probabilistic) and FU datapath faults all
        // key on logical commit coordinates, so an equally-faulted golden
        // model must agree on every decision AND every per-iteration digest
        // even though the timed core commits writes in bank-arbitrated
        // order.
        use crate::fault::{FaultActivation, FaultScenario, FuFault, TimedRamFault};
        let code = short_code();
        let config = CoreConfig { max_iterations: 6, early_stop: true, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let rom = ConnectivityRom::build(code.params(), code.table());
        let mut golden = GoldenModel::new(
            &code,
            CnSchedule::natural(&rom),
            config.quantizer,
            config.max_iterations,
            config.early_stop,
        );
        let (_, llrs) = noisy_llrs(&code, 2.8, 4242);
        let channel = hw.quantize_channel(&llrs);
        let scenarios = [
            // Two concurrent permanent faults, one pair on the same word.
            FaultScenario::single(RamFault::StuckWord { word: 3, value: 31 })
                .with_ram(TimedRamFault::permanent(RamFault::FlippedBits { word: 3, mask: 1 }))
                .with_ram(TimedRamFault::permanent(RamFault::StuckWord { word: 9, value: -31 })),
            // A transient burst over iterations 1..3.
            FaultScenario::none().with_ram(TimedRamFault {
                fault: RamFault::FlippedBits { word: 5, mask: 0b111 },
                activation: FaultActivation::Window { from: 1, until: 3 },
            }),
            // Seeded per-commit upsets at 20%.
            FaultScenario::none().with_ram(TimedRamFault {
                fault: RamFault::FlippedBits { word: 2, mask: 0b1010 },
                activation: FaultActivation::Random { seed: 0xBEEF, per_mille: 200 },
            }),
            // FU datapath faults, alone and combined with a RAM fault.
            FaultScenario::none().with_fu(Some(FuFault::StuckSign { unit: 17, negative: true })),
            FaultScenario::single(RamFault::StuckWord { word: 1, value: 16 })
                .with_fu(Some(FuFault::StuckMag { unit: 359, value: 31 })),
        ];
        for scenario in scenarios {
            hw.set_scenario(scenario);
            golden.set_scenario(scenario);
            let mut hw_trace = Vec::new();
            let mut golden_trace = Vec::new();
            let hw_out = hw.decode_quantized_traced(&channel, &mut hw_trace);
            let golden_out = golden.decode_quantized_traced(&channel, &mut golden_trace);
            assert_eq!(hw_out.result, golden_out, "{scenario:?}: results diverged");
            assert_eq!(hw_trace, golden_trace, "{scenario:?}: message traces diverged");
        }
        // Clearing the scenario restores fault-free behavior.
        hw.set_scenario(FaultScenario::none());
        golden.set_scenario(FaultScenario::none());
        assert_eq!(hw.decode_quantized(&channel).result, golden.decode_quantized(&channel));
    }

    #[test]
    fn transient_fault_outside_its_window_is_inert() {
        // A burst confined to iterations past the cap must decode
        // bit-identically to the fault-free core.
        use crate::fault::{FaultActivation, FaultScenario, TimedRamFault};
        let code = short_code();
        let config = CoreConfig { max_iterations: 4, ..CoreConfig::default() };
        let mut hw = core(&code, config);
        let (_, llrs) = noisy_llrs(&code, 3.0, 808);
        let channel = hw.quantize_channel(&llrs);
        let clean = hw.decode_quantized(&channel);
        hw.set_scenario(FaultScenario::none().with_ram(TimedRamFault {
            fault: RamFault::StuckWord { word: 0, value: 31 },
            activation: FaultActivation::Window { from: 10, until: 20 },
        }));
        assert_eq!(hw.decode_quantized(&channel), clean);
    }

    #[test]
    fn traced_decode_matches_untraced() {
        let code = short_code();
        let mut hw = core(&code, CoreConfig { max_iterations: 5, ..CoreConfig::default() });
        let (_, llrs) = noisy_llrs(&code, 2.4, 57);
        let channel = hw.quantize_channel(&llrs);
        let plain = hw.decode_quantized(&channel);
        let mut trace = Vec::new();
        let traced = hw.decode_quantized_traced(&channel, &mut trace);
        assert_eq!(plain, traced);
        assert_eq!(trace.len(), traced.result.iterations);
        // Messages evolve between iterations, so digests must not repeat on
        // a frame that is still converging.
        assert!(trace.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn early_stop_reduces_cycles_on_clean_frames() {
        let code = short_code();
        let mut fixed = core(&code, CoreConfig { max_iterations: 30, ..CoreConfig::default() });
        let mut stopping = core(
            &code,
            CoreConfig { max_iterations: 30, early_stop: true, ..CoreConfig::default() },
        );
        let (_, llrs) = noisy_llrs(&code, 4.0, 77);
        let a = fixed.decode(&llrs);
        let b = stopping.decode(&llrs);
        assert!(b.cycles.iterations < a.cycles.iterations);
        assert!(b.cycles.total_cycles < a.cycles.total_cycles);
    }
}
