//! Extraction of the address/shuffle ROM from the code's address table —
//! the hardware form of the Tanner-graph connectivity (Section 3, Fig. 3).
//!
//! Every base address `x` of the table decomposes as `x = shift·q + residue`:
//!
//! * `shift` is the cyclic-shift value the shuffling network applies;
//! * `residue` is the local check index within every functional unit that
//!   this entry's 360 messages belong to;
//! * the entry's messages live at one common `word` address across all 360
//!   message-RAM lanes (lane `t` holds the message of information node
//!   `360·g + t`).
//!
//! This is why storing the whole 64 800-bit code's connectivity needs only
//! `E_IN/360` small entries — 0.075 mm² in the paper's Table 3.

use dvbs2_ldpc::{AddressTable, CodeParams, PARALLELISM};

/// One `(word, shift, residue)` connectivity entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RomEntry {
    /// Message-RAM word address shared by the entry's 360 edges.
    pub word: u32,
    /// Cyclic shift `x div q` applied by the shuffling network.
    pub shift: u16,
    /// Local check index `x mod q` within every functional unit.
    pub residue: u16,
    /// Information-node group this entry belongs to.
    pub group: u16,
    /// Index of the entry within its group's table row.
    pub index: u8,
}

/// The connectivity ROM of one code rate: all entries in message-RAM word
/// order, plus the per-residue grouping the check phase iterates over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityRom {
    entries: Vec<RomEntry>,
    rows: Vec<Vec<u32>>,
    q: usize,
    check_degree: usize,
    group_base: Vec<u32>,
}

impl ConnectivityRom {
    /// Builds the ROM for a code.
    ///
    /// Words are assigned group-major: group `g`'s `d_g` entries occupy
    /// consecutive words, which is what lets the information phase read the
    /// message RAM with a simple incrementing address.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not match `params` (a table from
    /// [`dvbs2_ldpc::DvbS2Code`] always does).
    pub fn build(params: &CodeParams, table: &AddressTable) -> Self {
        table.validate(params).expect("table must match params");
        let q = params.q;
        let mut entries = Vec::with_capacity(params.addr_entries());
        let mut rows = vec![Vec::new(); q];
        let mut group_base = Vec::with_capacity(params.groups() + 1);
        let mut word = 0u32;
        for (g, row) in table.rows().iter().enumerate() {
            group_base.push(word);
            for (i, &x) in row.iter().enumerate() {
                let entry = RomEntry {
                    word,
                    shift: (x as usize / q) as u16,
                    residue: (x as usize % q) as u16,
                    group: g as u16,
                    index: i as u8,
                };
                rows[entry.residue as usize].push(word);
                entries.push(entry);
                word += 1;
            }
        }
        group_base.push(word);
        ConnectivityRom { entries, rows, q, check_degree: params.check_degree, group_base }
    }

    /// All entries, indexed by word address.
    pub fn entries(&self) -> &[RomEntry] {
        &self.entries
    }

    /// Entry at word address `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn entry(&self, w: usize) -> &RomEntry {
        &self.entries[w]
    }

    /// Entry ids (word addresses) whose messages feed the checks of residue
    /// class `r` — exactly `check_degree - 2` of them thanks to the table's
    /// residue balance.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.rows[r]
    }

    /// Number of residue rows (`q`).
    pub fn row_count(&self) -> usize {
        self.q
    }

    /// Information edges per check (`check_degree - 2`).
    pub fn row_len(&self) -> usize {
        self.check_degree - 2
    }

    /// Total message-RAM words per lane (`E_IN / 360`).
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// First word address of information group `g` (the information phase
    /// starts each node's edge run here).
    pub fn group_base(&self, g: usize) -> usize {
        self.group_base[g] as usize
    }

    /// ROM storage in bits: one `(shift, word-address)` pair per entry.
    /// The residue is implicit in the schedule order and need not be stored.
    pub fn storage_bits(&self) -> usize {
        let shift_bits = usize::BITS as usize - (PARALLELISM - 1).leading_zeros() as usize;
        let addr_bits = usize::BITS as usize - (self.words().max(2) - 1).leading_zeros() as usize;
        self.entries.len() * (shift_bits + addr_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};

    fn rom_for(rate: CodeRate) -> (CodeParams, ConnectivityRom) {
        let code = DvbS2Code::new(rate, FrameSize::Normal).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        (*code.params(), rom)
    }

    #[test]
    fn word_count_matches_table2() {
        let (_, rom) = rom_for(CodeRate::R1_2);
        assert_eq!(rom.words(), 450);
    }

    #[test]
    fn every_row_has_constant_length() {
        for rate in [CodeRate::R1_4, CodeRate::R1_2, CodeRate::R9_10] {
            let (p, rom) = rom_for(rate);
            assert_eq!(rom.row_count(), p.q);
            for r in 0..rom.row_count() {
                assert_eq!(rom.row(r).len(), p.check_degree - 2, "{rate} row {r}");
            }
        }
    }

    #[test]
    fn rows_partition_all_words() {
        let (p, rom) = rom_for(CodeRate::R2_3);
        let mut seen = vec![false; rom.words()];
        for r in 0..rom.row_count() {
            for &w in rom.row(r) {
                assert!(!seen[w as usize], "word {w} in two rows");
                seen[w as usize] = true;
                assert_eq!(rom.entry(w as usize).residue as usize, r);
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rom.words(), p.addr_entries());
    }

    #[test]
    fn entries_reconstruct_base_addresses() {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Normal).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let q = code.params().q;
        let mut w = 0usize;
        for (g, row) in code.table().rows().iter().enumerate() {
            assert_eq!(rom.group_base(g), w);
            for &x in row {
                let e = rom.entry(w);
                assert_eq!(e.shift as usize * q + e.residue as usize, x as usize);
                assert_eq!(e.group as usize, g);
                w += 1;
            }
        }
    }

    #[test]
    fn storage_matches_paper_magnitude() {
        // The paper: 0.075 mm^2 to store the connectivity. Worst rate is
        // 3/5 with 648 entries; at (9 + 10) bits per entry this is ~12.3 kbit
        // which at the calibrated SRAM density is ~0.066 mm^2.
        let (_, rom) = rom_for(CodeRate::R3_5);
        assert_eq!(rom.words(), 648);
        let bits = rom.storage_bits();
        assert!((12_000..14_000).contains(&bits), "bits {bits}");
    }
}
