//! Bridge from the hardware connectivity (ROM + check-node schedule) to the
//! software decoder's hardware-partitioned mode.
//!
//! The quantized boxplus is order-dependent in its low bits, so making
//! [`dvbs2_decoder::QuantizedZigzagDecoder`] bit-exact against
//! [`crate::GoldenModel`] needs more than the 360-sub-chain boundary
//! semantics: every check must also feed its boxplus the *same operands in
//! the same order* as the functional-unit array. The hardware order is the
//! schedule's word order per residue row; the graph's order is ascending
//! variable index. [`hw_chain_partition`] computes the per-check permutation
//! between the two and packages it with `lanes = 360` as a
//! [`ChainPartition`].

use crate::rom::ConnectivityRom;
use crate::schedule::CnSchedule;
use dvbs2_decoder::ChainPartition;
use dvbs2_ldpc::{TannerGraph, PARALLELISM};

/// Builds the [`ChainPartition`] that makes the sequential software decoder
/// replay the hardware exactly: 360 sub-chains plus, for every check, the
/// schedule's message input order expressed as a permutation of the graph's
/// information edges.
///
/// For check `j` (functional unit `u = j / q`, residue row `r = j % q`) the
/// hardware reads the words of `schedule.row(r)` in order; entry `w`
/// contributes the message of information node
/// `m = group(w)·360 + ((u + 360 − shift(w)) mod 360)` to that check. The
/// returned permutation records where each such `m` sits among check `j`'s
/// graph edges (which are sorted by variable index).
///
/// # Panics
///
/// Panics if `graph` is not the Tanner graph of the code the ROM was built
/// from, or if the schedule does not match the ROM.
pub fn hw_chain_partition(
    rom: &ConnectivityRom,
    schedule: &CnSchedule,
    graph: &TannerGraph,
) -> ChainPartition {
    schedule.validate(rom).expect("schedule must match the ROM");
    let p = PARALLELISM;
    let q_rows = rom.row_count();
    let row_len = rom.row_len();
    let n_check = graph.check_count();
    assert_eq!(n_check, p * q_rows, "graph does not belong to the ROM's code");

    let mut edge_order = vec![0u32; n_check * row_len];
    let mut vars = vec![0usize; row_len];
    for j in 0..n_check {
        let u = j / q_rows;
        let r = j % q_rows;
        let start = graph.check_edges(j).start;
        for (pos, slot) in vars.iter_mut().enumerate() {
            *slot = graph.var_of_edge(start + pos);
        }
        for (i, &w) in schedule.row(r).iter().enumerate() {
            let e = rom.entry(w as usize);
            let t = (u + p - e.shift as usize) % p;
            let m = e.group as usize * p + t;
            let pos = vars.iter().position(|&v| v == m).unwrap_or_else(|| {
                panic!("check {j}: schedule word {w} maps to variable {m}, not a graph neighbor")
            });
            edge_order[j * row_len + i] = pos as u32;
        }
    }
    ChainPartition::new(p, Some(edge_order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{optimize_schedule, AnnealOptions};
    use crate::golden::GoldenModel;
    use crate::memory::MemoryConfig;
    use dvbs2_decoder::test_support::noisy_llrs;
    use dvbs2_decoder::{
        DecoderConfig, QCheckArithmetic, QuantizedZigzagDecoder, Quantizer, SimdTier,
    };
    use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
    use std::sync::Arc;

    fn partitioned_decoder(
        code: &DvbS2Code,
        schedule: &CnSchedule,
        rom: &ConnectivityRom,
        max_iterations: usize,
        early_stop: bool,
    ) -> QuantizedZigzagDecoder {
        let graph = Arc::new(code.tanner_graph());
        let partition = hw_chain_partition(rom, schedule, &graph);
        QuantizedZigzagDecoder::with_partition(
            graph,
            QCheckArithmetic::lut(Quantizer::paper_6bit()),
            DecoderConfig { max_iterations, early_stop, ..DecoderConfig::default() },
            partition,
        )
    }

    fn assert_bit_exact(code: &DvbS2Code, schedule: CnSchedule, rom: &ConnectivityRom) {
        for &(max_iters, early_stop) in &[(30usize, true), (6usize, false)] {
            let mut golden = GoldenModel::new(
                code,
                schedule.clone(),
                Quantizer::paper_6bit(),
                max_iters,
                early_stop,
            );
            let mut sw = partitioned_decoder(code, &schedule, rom, max_iters, early_stop);
            for seed in 0..3u64 {
                let (_, llrs) = noisy_llrs(code, 2.6, 7100 + seed);
                let channel = golden.quantize_channel(&llrs);
                let g = golden.decode_quantized(&channel);
                let s = sw.decode_quantized(&channel);
                assert_eq!(g, s, "seed {seed} iters {max_iters} early_stop {early_stop}: diverged");
            }
        }
    }

    #[test]
    fn partitioned_software_decoder_is_bit_exact_natural_schedule() {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        assert_bit_exact(&code, CnSchedule::natural(&rom), &rom);
    }

    #[test]
    fn partitioned_software_decoder_is_bit_exact_annealed_schedule() {
        // An annealed schedule permutes word order within rows — exactly the
        // order-dependence the edge permutation must absorb.
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let annealed = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 300, ..AnnealOptions::default() },
        )
        .schedule;
        assert_bit_exact(&code, annealed, &rom);
    }

    #[test]
    fn fused_sweep_matches_lut_indirection_sweep_with_digests() {
        // The construction-time fused layout must replay the PR-4
        // LUT-indirection sweep exactly — full DecodeResult and the
        // per-iteration FNV message digests — under both the natural and an
        // annealed schedule (the latter permutes word order within rows,
        // which is exactly what the baked permutation must absorb).
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let annealed = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 300, ..AnnealOptions::default() },
        )
        .schedule;
        let graph = Arc::new(code.tanner_graph());
        for (tag, schedule) in [("natural", CnSchedule::natural(&rom)), ("annealed", annealed)] {
            let partition = hw_chain_partition(&rom, &schedule, &graph);
            let config = DecoderConfig::default();
            let arith = QCheckArithmetic::lut(Quantizer::paper_6bit());
            let mut fused = QuantizedZigzagDecoder::with_partition(
                Arc::clone(&graph),
                arith.clone(),
                config,
                partition.clone(),
            );
            let mut indirect = QuantizedZigzagDecoder::with_partition_indirect(
                Arc::clone(&graph),
                arith,
                config,
                partition,
            );
            let (mut df, mut di) = (Vec::new(), Vec::new());
            for seed in 0..3u64 {
                let (_, llrs) = noisy_llrs(&code, 2.4, 8200 + seed);
                let channel = fused.quantize_channel(&llrs);
                let f = fused.decode_quantized_traced(&channel, &mut df);
                let i = indirect.decode_quantized_traced(&channel, &mut di);
                assert_eq!(f, i, "{tag} seed {seed}: results diverged");
                assert_eq!(df, di, "{tag} seed {seed}: digests diverged");
                assert_eq!(df.len(), f.iterations, "{tag} seed {seed}: one digest per sweep");
            }
        }
    }

    #[test]
    fn simd_lane_planes_are_bit_exact_at_every_tier() {
        // The sub-chain-major SIMD planes must replay the functional-unit
        // array exactly at every dispatch tier this host can run: the full
        // golden DecodeResult, plus per-iteration FNV message digests
        // against the scalar fused sweep — under both the natural and an
        // annealed schedule.
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let annealed = optimize_schedule(
            &rom,
            MemoryConfig::default(),
            AnnealOptions { moves: 300, ..AnnealOptions::default() },
        )
        .schedule;
        let graph = Arc::new(code.tanner_graph());
        for (tag, schedule) in [("natural", CnSchedule::natural(&rom)), ("annealed", annealed)] {
            let partition = hw_chain_partition(&rom, &schedule, &graph);
            let arith = QCheckArithmetic::lut(Quantizer::paper_6bit());
            let mut golden =
                GoldenModel::new(&code, schedule.clone(), Quantizer::paper_6bit(), 10, true);
            let config = DecoderConfig::default().with_max_iterations(10);
            let mut fused = QuantizedZigzagDecoder::with_partition_fused(
                Arc::clone(&graph),
                arith.clone(),
                config,
                partition.clone(),
            );
            for tier in SimdTier::available() {
                let mut lanes = QuantizedZigzagDecoder::with_partition(
                    Arc::clone(&graph),
                    arith.clone(),
                    config.with_simd_tier(Some(tier)),
                    partition.clone(),
                );
                assert_eq!(lanes.simd_tier(), Some(tier), "{tag}: plan must build");
                let (mut dl, mut df) = (Vec::new(), Vec::new());
                for seed in 0..2u64 {
                    let (_, llrs) = noisy_llrs(&code, 2.4, 8600 + seed);
                    let channel = lanes.quantize_channel(&llrs);
                    let g = golden.decode_quantized(&channel);
                    let l = lanes.decode_quantized_traced(&channel, &mut dl);
                    let f = fused.decode_quantized_traced(&channel, &mut df);
                    assert_eq!(l, g, "{tag} {tier:?} seed {seed}: diverged from golden");
                    assert_eq!(l, f, "{tag} {tier:?} seed {seed}: diverged from fused");
                    assert_eq!(dl, df, "{tag} {tier:?} seed {seed}: digests diverged");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn mismatched_graph_is_rejected() {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let other = DvbS2Code::new(CodeRate::R2_3, FrameSize::Short).unwrap();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let schedule = CnSchedule::natural(&rom);
        hw_chain_partition(&rom, &schedule, &other.tanner_graph());
    }
}
