//! Technology constants for the area model.
//!
//! The paper reports Synopsys Design Compiler synthesis on an ST
//! Microelectronics 0.13 µm CMOS library (Table 3). We cannot run 2005 ASIC
//! synthesis, so [`Technology`] captures the two densities the area model
//! needs — SRAM area per bit and logic area per gate — **calibrated once**
//! against the paper's published totals (see DESIGN.md §2). Every area in
//! Table 3 is then *derived* from the actual bit/gate inventories of this
//! implementation, not copied from the paper.

/// Silicon-area densities and timing of a target technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Human-readable node name.
    pub name: &'static str,
    /// Single-port SRAM area per bit, including periphery, in µm²/bit.
    ///
    /// Calibrated from the paper: the message RAMs store the worst-case
    /// information-edge messages (rate 3/5: 233 280 × 6 bit) plus the
    /// backward parity messages (rate 1/4: 48 600 × 6 bit) in 9.12 mm²,
    /// giving ≈ 5.39 µm²/bit for the small, wide, single-ported macros this
    /// architecture uses.
    pub sram_um2_per_bit: f64,
    /// NAND2-equivalent gate area in µm² (standard-cell, routed).
    pub gate_um2: f64,
    /// Extra routing/wiring factor for the shuffle network, whose area "is
    /// dominated by the logic cells" but pays for 360-lane wiring.
    pub shuffle_wiring_factor: f64,
    /// Worst-case maximum clock frequency in MHz.
    pub max_clock_mhz: f64,
}

/// The ST Microelectronics 0.13 µm node of the paper.
pub const ST_0_13_UM: Technology = Technology {
    name: "ST 0.13um CMOS (worst case)",
    sram_um2_per_bit: 5.39,
    gate_um2: 5.0,
    shuffle_wiring_factor: 2.26,
    max_clock_mhz: 270.0,
};

impl Technology {
    /// Area of an SRAM/ROM of `bits` bits, in mm².
    pub fn sram_mm2(&self, bits: usize) -> f64 {
        bits as f64 * self.sram_um2_per_bit / 1e6
    }

    /// Area of `gates` NAND2-equivalent gates, in mm².
    pub fn logic_mm2(&self, gates: usize) -> f64 {
        gates as f64 * self.gate_um2 / 1e6
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1e3 / self.max_clock_mhz
    }
}

impl Default for Technology {
    fn default() -> Self {
        ST_0_13_UM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_constants() {
        let t = ST_0_13_UM;
        assert_eq!(t.max_clock_mhz, 270.0);
        assert!((t.clock_period_ns() - 3.7037).abs() < 1e-3);
    }

    #[test]
    fn sram_area_scales_linearly() {
        let t = Technology::default();
        let one = t.sram_mm2(1_000_000);
        let two = t.sram_mm2(2_000_000);
        assert!((two - 2.0 * one).abs() < 1e-12);
        // 1 Mbit at ~5.4 um^2/bit is ~5.4 mm^2.
        assert!((one - 5.39).abs() < 0.01);
    }

    #[test]
    fn message_ram_calibration_reproduces_paper_total() {
        // Worst-case message storage (see DESIGN.md): 233280 + 48600
        // messages at 6 bit each must come out near the paper's 9.12 mm^2.
        let bits = (233_280 + 48_600) * 6;
        let area = ST_0_13_UM.sram_mm2(bits);
        assert!((area - 9.12).abs() < 0.03, "area {area}");
    }
}
