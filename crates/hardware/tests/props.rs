//! Property tests for the hardware model.

use dvbs2_hardware::{
    simulate_cn_phase, CnSchedule, ConnectivityRom, CoreConfig, GoldenModel, HardwareDecoder,
    MemoryConfig, ShuffleNetwork,
};
use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn short_code() -> DvbS2Code {
    DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rotation by `s` then by its inverse is the identity, for any width.
    #[test]
    fn shuffle_round_trips(lanes in 1usize..512, shift in 0usize..2048) {
        let net = ShuffleNetwork::new(lanes);
        let data: Vec<u32> = (0..lanes as u32).collect();
        let mut mid = vec![0u32; lanes];
        let mut back = vec![0u32; lanes];
        net.rotate(&data, shift, &mut mid);
        net.rotate(&mid, net.inverse_shift(shift), &mut back);
        prop_assert_eq!(back, data);
    }

    /// Composition of rotations adds shifts modulo the lane count.
    #[test]
    fn shuffle_composes(lanes in 2usize..256, a in 0usize..512, b in 0usize..512) {
        let net = ShuffleNetwork::new(lanes);
        let data: Vec<u32> = (0..lanes as u32).map(|i| i * 3 + 1).collect();
        let mut one = vec![0u32; lanes];
        let mut two = vec![0u32; lanes];
        let mut direct = vec![0u32; lanes];
        net.rotate(&data, a, &mut one);
        net.rotate(&one, b, &mut two);
        net.rotate(&data, (a + b) % lanes, &mut direct);
        prop_assert_eq!(two, direct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any sequence of legal within-row swaps keeps the schedule valid, and
    /// the memory simulation always conserves every write.
    #[test]
    fn fuzzed_schedules_stay_valid_and_conserve_writes(seed in any::<u64>()) {
        let code = short_code();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let mut schedule = CnSchedule::natural(&rom);
        let mut rng = SmallRng::seed_from_u64(seed);
        let row_len = rom.row_len();
        for _ in 0..200 {
            let r = rng.random_range(0..rom.row_count());
            let i = rng.random_range(0..row_len);
            let j = rng.random_range(0..row_len);
            schedule.swap_within_row(r, i, j);
        }
        prop_assert!(schedule.validate(&rom).is_ok());
        let stats = simulate_cn_phase(
            MemoryConfig::default(),
            &schedule.read_sequence(),
            row_len,
        );
        prop_assert_eq!(
            stats.delayed_writes + stats.immediate_writes,
            rom.words(),
            "every write must eventually commit"
        );
        prop_assert!(stats.total_cycles >= stats.read_cycles);
    }

    /// The timed core matches the golden model bit for bit on arbitrary
    /// (even adversarial, non-codeword) quantized inputs.
    #[test]
    fn core_matches_golden_on_arbitrary_inputs(seed in any::<u64>()) {
        let code = short_code();
        let rom = ConnectivityRom::build(code.params(), code.table());
        let schedule = CnSchedule::natural(&rom);
        let config = CoreConfig { max_iterations: 3, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::new(&code, schedule.clone(), config);
        let mut golden = GoldenModel::new(&code, schedule, config.quantizer, 3, false);
        let mut rng = SmallRng::seed_from_u64(seed);
        let channel: Vec<i32> =
            (0..code.params().n).map(|_| rng.random_range(-31..=31)).collect();
        prop_assert_eq!(hw.decode_quantized(&channel).result, golden.decode_quantized(&channel));
    }
}

#[test]
fn all_zero_llrs_are_handled_gracefully() {
    // A total erasure: no information at all. The decoder must terminate
    // and report non-convergence (the all-zero word satisfies H, but the
    // model must not crash or loop).
    let code = short_code();
    let mut hw = HardwareDecoder::with_natural_schedule(
        &code,
        CoreConfig { max_iterations: 5, ..CoreConfig::default() },
    );
    let channel = vec![0i32; code.params().n];
    let out = hw.decode_quantized(&channel);
    assert_eq!(out.result.iterations, 5);
    // All-zero LLRs decide the all-zero word, which is a codeword.
    assert!(out.result.converged);
    assert_eq!(out.result.bits.count_ones(), 0);
}

#[test]
fn saturated_llrs_decode_instantly() {
    let code = short_code();
    let mut hw = HardwareDecoder::with_natural_schedule(
        &code,
        CoreConfig { early_stop: true, ..CoreConfig::default() },
    );
    let channel = vec![31i32; code.params().n]; // emphatic all-zero word
    let out = hw.decode_quantized(&channel);
    assert!(out.result.converged);
    assert_eq!(out.result.iterations, 1);
    assert_eq!(out.result.bits.count_ones(), 0);
}
