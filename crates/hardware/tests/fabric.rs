//! Property tests for the multi-core decoder fabric: the P = 1 identity,
//! P-invariance, and arbitration-order invariance of decoded frames.

use dvbs2_decoder::test_support::noisy_llrs;
use dvbs2_hardware::{
    Arbitration, CnSchedule, ConnectivityRom, CoreConfig, DecoderFabric, FabricConfig,
    FaultScenario, GoldenModel, HardwareDecoder, RamFault,
};
use dvbs2_ldpc::{CodeRate, DvbS2Code, FrameSize};
use proptest::prelude::*;

fn batch(code: &DvbS2Code, count: usize, ebn0: f64, seed: u64) -> Vec<Vec<f64>> {
    (0..count).map(|i| noisy_llrs(code, ebn0, seed ^ (i as u64) << 17).1).collect()
}

/// Fabric P=1 must be cycle- and bit-identical to the bare core — full
/// `DecodeResult`, per-iteration FNV digest, and per-frame cycle counts —
/// across Normal and Short rate points.
#[test]
fn single_core_identity_across_rate_points() {
    let points = [
        (CodeRate::R1_4, FrameSize::Short),
        (CodeRate::R1_2, FrameSize::Short),
        (CodeRate::R3_4, FrameSize::Short),
        (CodeRate::R8_9, FrameSize::Short),
        (CodeRate::R1_2, FrameSize::Normal),
        (CodeRate::R9_10, FrameSize::Normal),
    ];
    for (rate, frame) in points {
        let code = DvbS2Code::new(rate, frame).unwrap();
        let config = CoreConfig { max_iterations: 2, ..CoreConfig::default() };
        let mut hw = HardwareDecoder::with_natural_schedule(&code, config);
        let mut fabric = DecoderFabric::with_natural_schedule(&code, FabricConfig::single(config));
        let frames: Vec<Vec<i32>> =
            batch(&code, 2, 2.0, 0xF00D).iter().map(|llrs| hw.quantize_channel(llrs)).collect();
        let mut fabric_traces = Vec::new();
        let out = fabric.decode_quantized_batch_traced(&frames, &mut fabric_traces);
        let mut serial = 0u64;
        for (i, channel) in frames.iter().enumerate() {
            let mut hw_trace = Vec::new();
            let single = hw.decode_quantized_traced(channel, &mut hw_trace);
            assert_eq!(out.outputs[i], single, "{rate:?}/{frame:?} frame {i}: result");
            assert_eq!(
                fabric_traces[i], hw_trace,
                "{rate:?}/{frame:?} frame {i}: per-iteration digests"
            );
            assert_eq!(
                out.timings[i].span_cycles(),
                single.cycles.total_cycles as u64,
                "{rate:?}/{frame:?} frame {i}: cycle identity"
            );
            serial += single.cycles.total_cycles as u64;
        }
        assert_eq!(out.stats.makespan_cycles, serial, "{rate:?}/{frame:?}: makespan");
        assert_eq!(out.stats.stall_cycles, 0, "{rate:?}/{frame:?}: P=1 cannot stall");
    }
}

/// Fabric frames must also match the untimed golden model bit for bit,
/// digest for digest — through the fabric's own batch path.
#[test]
fn fabric_frames_match_the_golden_model() {
    let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
    let config = CoreConfig { max_iterations: 3, ..CoreConfig::default() };
    let mut fabric = DecoderFabric::with_natural_schedule(
        &code,
        FabricConfig { cores: 2, core: config, ..FabricConfig::default() },
    );
    let rom = ConnectivityRom::build(code.params(), code.table());
    let mut golden = GoldenModel::new(
        &code,
        CnSchedule::natural(&rom),
        config.quantizer,
        config.max_iterations,
        config.early_stop,
    );
    let frames: Vec<Vec<i32>> =
        batch(&code, 4, 2.2, 0xBEEF).iter().map(|llrs| fabric.quantize_channel(llrs)).collect();
    let mut traces = Vec::new();
    let out = fabric.decode_quantized_batch_traced(&frames, &mut traces);
    for (i, channel) in frames.iter().enumerate() {
        let mut golden_trace = Vec::new();
        let golden_out = golden.decode_quantized_traced(channel, &mut golden_trace);
        assert_eq!(out.outputs[i].result, golden_out, "frame {i}: result vs golden");
        assert_eq!(traces[i], golden_trace, "frame {i}: digests vs golden");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Decoded frames are invariant in the core count, the arbitration
    /// policy, its starting offset, and double buffering — timing and data
    /// are separated by construction, faulted or not.
    #[test]
    fn frames_are_p_and_arbitration_invariant(
        seed in any::<u64>(),
        ebn0 in 1.0f64..3.5,
        faulted in any::<bool>(),
    ) {
        let code = DvbS2Code::new(CodeRate::R1_2, FrameSize::Short).unwrap();
        let core = CoreConfig { max_iterations: 2, ..CoreConfig::default() };
        let frames = batch(&code, 5, ebn0, seed);
        let scenario = if faulted {
            FaultScenario::single(RamFault::StuckWord { word: 2, value: 31 })
        } else {
            FaultScenario::none()
        };
        let mut reference =
            DecoderFabric::with_natural_schedule(&code, FabricConfig::single(core));
        reference.set_scenario(scenario);
        let expect = reference.decode_batch(&frames).outputs;
        for cores in [2usize, 4] {
            for arbitration in [
                Arbitration::RoundRobin { start: 0 },
                Arbitration::RoundRobin { start: cores - 1 },
                Arbitration::Fixed,
            ] {
                for double_buffer in [false, true] {
                    let cfg = FabricConfig {
                        cores,
                        core,
                        link_latency: 2,
                        arbitration,
                        double_buffer,
                    };
                    let mut fabric = DecoderFabric::with_natural_schedule(&code, cfg);
                    fabric.set_scenario(scenario);
                    let out = fabric.decode_batch(&frames);
                    prop_assert_eq!(
                        &out.outputs, &expect,
                        "P={} {:?} db={} diverged", cores, arbitration, double_buffer
                    );
                    // Contention may reorder grants but never loses cycles:
                    // every span decomposes exactly.
                    for tm in &out.timings {
                        prop_assert_eq!(
                            tm.span_cycles(),
                            tm.io_beats as u64
                                + tm.load_stall_cycles
                                + tm.input_wait_cycles
                                + tm.decode_cycles as u64
                                + 2 * cfg.link_latency as u64
                        );
                    }
                }
            }
        }
    }
}
